"""Diagnostic objects for the static analyzer.

Every finding the analyzer emits is a :class:`Diagnostic`: a stable
``MDnnn`` code, a severity, a human-readable message, a source location
(a schema element or a plan-node path — there is no fact data and no
file/line to point at), and a fix hint.  :class:`AnalysisReport` is the
ordered collection the ``analyze_*`` entry points return; adding a
diagnostic bumps the ``analyze.diagnostics.<code>`` counter so runs are
visible in :mod:`repro.obs` like every other engine activity.

The code space is partitioned by concern:

* ``MD00x`` — aggregation-type safety (§3.1's ``Aggtype_T``);
* ``MD01x`` — plan typechecking (Theorem 1's closure, made executable);
* ``MD02x`` — summarizability and hierarchy-property drift (§3.4,
  Lenz–Shoshani);
* ``MD03x`` — temporal and uncertainty lints (§3.2–§3.3);
* ``MD04x`` — execution-path and cost observations (which physical
  path the engine will take for a node, never a correctness issue);
* ``MD05x`` — SQL pushdown coverage (whether the relational backend
  can compile a node, and if not, why it will fall back — never a
  correctness issue: the fallback answers in memory);
* ``MD06x`` — result-cache coverage (whether the canonical plan
  fingerprint can key a plan, and if not, why every execution will
  recompute — never a correctness issue: the bypass answers directly);
* ``MD07x`` — shard-safety (whether partition-and-merge execution of a
  plan is provably exact: function distributivity class, purity of
  user callables, partition-safety through the operators).

``docs/ANALYSIS.md`` is the narrative catalogue; :data:`CATALOG` below
is the machine-readable one and the AST lint cross-checks the two.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import metrics

__all__ = ["Severity", "Diagnostic", "AnalysisReport", "CATALOG"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are guaranteed failures: evaluating the analyzed
    plan (or using the analyzed schema) raises.  ``WARNING`` findings
    are possible or semantic problems evaluation survives — the paper's
    "warn the user" mode.  ``INFO`` findings are observations."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort rank; errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: code → (default severity, one-line meaning).  The single source of
#: truth for which codes exist; ``docs/ANALYSIS.md`` documents each in
#: full and ``tools/lint_invariants.py`` checks the two stay in sync.
CATALOG: Dict[str, Tuple[Severity, str]] = {
    "MD001": (Severity.ERROR,
              "aggregation-type violation: the function is not "
              "applicable to the argument dimensions' bottom types "
              "(strict mode raises AggregationTypeError)"),
    "MD002": (Severity.WARNING,
              "possible aggregation-type violation: applicability "
              "depends on a summarizability verdict the analyzer "
              "cannot decide statically, or strict mode is off"),
    "MD010": (Severity.ERROR,
              "selection predicate constrains a dimension missing from "
              "the input schema"),
    "MD011": (Severity.ERROR,
              "projection list is empty, has duplicates, or names a "
              "dimension missing from the input schema"),
    "MD012": (Severity.ERROR,
              "rename maps an unknown dimension or collides two "
              "dimension names"),
    "MD013": (Severity.ERROR,
              "union/difference operand schemas are not common"),
    "MD014": (Severity.ERROR,
              "join operands share dimension names (apply ρ first)"),
    "MD015": (Severity.ERROR,
              "operand temporal kinds differ (or an operator needs a "
              "temporal kind the input lacks)"),
    "MD016": (Severity.ERROR,
              "aggregate formation is malformed: unknown grouping "
              "dimension or category, argument dimension missing, or "
              "result dimension name collides with the schema"),
    "MD020": (Severity.WARNING,
              "drift: hierarchy declared strict but the extension "
              "violates Definition 2"),
    "MD021": (Severity.WARNING,
              "drift: hierarchy declared partitioning but the "
              "extension violates Definition 3"),
    "MD022": (Severity.INFO,
              "over-conservative declaration: hierarchy declared "
              "non-strict/non-partitioning but the extension satisfies "
              "the property"),
    "MD023": (Severity.WARNING,
              "hierarchy is extensionally non-strict: pre-computed "
              "aggregates above the offending levels are unsafe for "
              "distributive reuse"),
    "MD024": (Severity.WARNING,
              "hierarchy is extensionally non-partitioning: grouping "
              "by an intermediate category can drop or double-place "
              "values"),
    "MD025": (Severity.INFO,
              "hierarchy properties undeclared; the analyzer falls "
              "back to extensional checks and cannot vouch for future "
              "data"),
    "MD026": (Severity.INFO,
              "aggregation-type inversion: a category's type exceeds "
              "its parent category's, so coarser data supports more "
              "functions than finer data"),
    "MD028": (Severity.WARNING,
              "non-strict fact paths: some fact maps to several values "
              "of a category, so aggregates there double-count"),
    "MD030": (Severity.WARNING,
              "grouping is not statically summarizable: the result's "
              "bottom aggregation type degrades to c (count-only)"),
    "MD031": (Severity.WARNING,
              "timeslice chronon lies outside the recorded valid-time "
              "span: every relation restricts to ⊤ ('cannot "
              "characterize')"),
    "MD032": (Severity.WARNING,
              "probability mass of a fact's alternative "
              "characterizations exceeds 1 in some dimension"),
    "MD033": (Severity.INFO,
              "summarizability could not be determined statically "
              "(schema-only analysis with no declarations)"),
    "MD040": (Severity.INFO,
              "aggregation function has no columnar batch kernel: α "
              "will form groups but evaluate per group on the object "
              "path (aggregate.kernel.fallback will count it)"),
    "MD050": (Severity.INFO,
              "plan shape is outside the SQL-pushdown subset (join, "
              "nested α, temporal MO, fact-type rename on a fact-set "
              "result, non-common set operands, or an unknown node): "
              "the sql backend falls back to the in-memory path"),
    "MD051": (Severity.INFO,
              "selection predicate is not translatable to SQL (opaque "
              "predicate kind, or a constrained dimension missing from "
              "the schema): the sql backend falls back"),
    "MD052": (Severity.INFO,
              "aggregation is not pushed down (function has no SQL "
              "scalar, strict-type mode, non-numeric measure "
              "surrogates, inapplicable argument types, or ⊤-category "
              "grouping): the sql backend falls back"),
    "MD060": (Severity.INFO,
              "plan bypasses the result cache: a predicate or "
              "aggregation function is opaque to the canonical "
              "fingerprint (query.cache.bypass will count it); every "
              "execution recomputes"),
    "MD070": (Severity.INFO,
              "aggregation function is HOLISTIC (no decomposition into "
              "mergeable partials exists): this α cannot be sharded "
              "and must evaluate on a single partition"),
    "MD071": (Severity.INFO,
              "aggregation function is ALGEBRAIC: shardable only via "
              "paired-accumulator decomposition (merge partial "
              "accumulator states, never the finished results)"),
    "MD072": (Severity.INFO,
              "grouping summarizability is not statically SAFE: "
              "partition-and-merge could double-count or drop facts, "
              "so the α is not provably shard-safe"),
    "MD073": (Severity.INFO,
              "set-difference/join below an α poisons partition-"
              "safety: operands would need cross-shard alignment "
              "before the per-shard results are meaningful"),
    "MD074": (Severity.WARNING,
              "user-defined callable is impure or nondeterministic "
              "(global-state mutation, I/O, randomness, clock reads, "
              "or order-dependent accumulation): unsafe to shard, "
              "replay, or cache"),
    "MD075": (Severity.INFO,
              "user-defined callable is unanalyzable (source "
              "unavailable, or a shape the classifier does not "
              "recognize): purity and shard-safety are undecidable, "
              "so the analyzer stays conservative"),
    "MD076": (Severity.WARNING,
              "combine disagrees with apply on synthesized partitions "
              "(the extensional merge-equivalence check failed): the "
              "statically distributive-shaped function is demoted to "
              "UNKNOWN and will not be sharded"),
    "MD077": (Severity.INFO,
              "plan is statically shard-safe but the sharded executor "
              "cannot evaluate it from columnar worker payloads "
              "(temporal MO, kernel-less distributive function, "
              "multi-argument algebraic function, poisoned measure "
              "column, or composed-key radix overflow)"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``location`` names the schema element (``"dimension Diagnosis"``)
    or plan node (``"plan[0].child: α[...]"``) the finding anchors to;
    ``hint`` says what would make it go away."""

    code: str
    severity: Severity
    message: str
    location: str
    hint: str = ""

    def render(self) -> str:
        """``severity MDnnn at <location>: message (hint)``."""
        text = (f"{self.severity.value} {self.code} at {self.location}: "
                f"{self.message}")
        return f"{text}  [fix: {self.hint}]" if self.hint else text


class AnalysisReport:
    """The ordered, counted collection of diagnostics one analysis run
    produced.  Iterable; renders one line per finding."""

    def __init__(self, subject: str,
                 diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._subject = subject
        self._diagnostics: List[Diagnostic] = []
        for diagnostic in diagnostics:
            self.add(diagnostic)

    @property
    def subject(self) -> str:
        """What was analyzed (a schema name or a plan label)."""
        return self._subject

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        """Record a finding (and count it in the observability layer).

        Unknown codes are programming errors in the analyzer itself,
        caught here so the catalogue can never silently drift."""
        if diagnostic.code not in CATALOG:
            raise ValueError(f"diagnostic code {diagnostic.code!r} is not "
                             f"in the catalogue")
        self._diagnostics.append(diagnostic)
        metrics.counter(f"analyze.diagnostics.{diagnostic.code}").inc()
        return diagnostic

    def emit(self, code: str, message: str, location: str,
             hint: str = "",
             severity: Optional[Severity] = None) -> Diagnostic:
        """Shorthand: build a finding with the catalogue's default
        severity (overridable) and :meth:`add` it."""
        default_severity, _meaning = CATALOG[code]
        return self.add(Diagnostic(
            code=code,
            severity=severity or default_severity,
            message=message,
            location=location,
            hint=hint,
        ))

    def extend(self, other: "AnalysisReport") -> None:
        """Fold another report's findings into this one (already
        counted when first added — no double count)."""
        self._diagnostics.extend(other._diagnostics)

    def sort(self) -> "AnalysisReport":
        """Order findings deterministically by (code, location,
        message), in place — the ``analyze_*`` entry points call this
        before returning, so two runs over the same subject render
        byte-identical reports regardless of traversal order.  Sorts
        the existing list rather than re-adding (re-adding would
        double-count ``analyze.diagnostics.*``).  Returns self."""
        self._diagnostics.sort(
            key=lambda d: (d.code, d.location, d.message))
        return self

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics
                     if d.severity is Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    def codes(self) -> List[str]:
        """The codes present, in emission order (with repeats)."""
        return [d.code for d in self._diagnostics]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def render(self) -> str:
        """The report as text: a header plus one line per finding,
        errors first (stable within a severity)."""
        ordered = sorted(self._diagnostics, key=lambda d: d.severity.rank)
        n_info = (len(self._diagnostics) - len(self.errors)
                  - len(self.warnings))
        lines = [f"analysis of {self._subject}: "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s), {n_info} info"]
        lines.extend(f"  {d.render()}" for d in ordered)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AnalysisReport({self._subject!r}, "
                f"{len(self._diagnostics)} finding(s))")
