"""Selection predicates over dimension values (paper §4.1).

The selection operator takes "a predicate p on the dimension types": a
fact qualifies when *some* tuple of dimension values characterizing it
satisfies p.  A :class:`Predicate` declares which dimensions it actually
constrains (``dims``) — unconstrained dimensions are existentially
trivial (any characterizing value, in particular ⊤, satisfies them) — so
the selection operator only enumerates candidate values where needed.

Predicates receive a :class:`SelectionContext`, giving temporal and
probabilistic predicates access to the MO (the paper's §4.2 allows
predicates that refer to time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import TimeSet

__all__ = [
    "SelectionContext",
    "Predicate",
    "characterized_by",
    "value_in_category",
    "rep_equals",
    "sid_satisfies",
    "characterized_during",
    "characterized_with_certainty",
    "conjunction",
    "disjunction",
    "negation",
]


@dataclass(frozen=True)
class SelectionContext:
    """What a predicate may inspect besides the candidate values."""

    mo: MultidimensionalObject
    fact: Fact


@dataclass(frozen=True)
class Predicate:
    """A predicate on dimension values.

    ``dims`` lists the constrained dimension names; ``test`` receives a
    mapping from each constrained dimension to one candidate value the
    fact is characterized by, plus the context.

    ``kind``/``payload`` describe the predicate *structurally* for
    consumers that compile rather than call it (the SQL pushdown
    backend): ``"characterized_by"`` carries ``(dimension_name,
    value)``, ``"conjunction"`` the operand predicates.  Every other
    constructor leaves the default ``"opaque"`` — callable but not
    translatable.
    """

    dims: Tuple[str, ...]
    test: Callable[[Dict[str, DimensionValue], SelectionContext], bool]
    description: str = "p"
    kind: str = "opaque"
    payload: object = None

    def __call__(self, values: Dict[str, DimensionValue],
                 ctx: SelectionContext) -> bool:
        return self.test(values, ctx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Predicate({self.description})"


def characterized_by(dimension_name: str,
                     value: DimensionValue) -> Predicate:
    """Facts characterized by ``value`` (``f ⇝ e``) — the bread-and-
    butter dice: e.g. all patients with a diagnosis in group 11."""

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        candidate = values[dimension_name]
        return ctx.mo.dimension(dimension_name).leq(candidate, value) \
            or candidate == value

    return Predicate(dims=(dimension_name,), test=test,
                     description=f"{dimension_name} ⇝ {value!r}",
                     kind="characterized_by",
                     payload=(dimension_name, value))


def value_in_category(dimension_name: str, category_name: str,
                      accept: Callable[[DimensionValue], bool]) -> Predicate:
    """Facts characterized by a value of the named category satisfying
    ``accept`` — e.g. an Age value with ``sid >= 18``."""

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        candidate = values[dimension_name]
        category = ctx.mo.dimension(dimension_name).category(category_name)
        return candidate in category and accept(candidate)

    return Predicate(dims=(dimension_name,), test=test,
                     description=f"{dimension_name}.{category_name} matches")


def sid_satisfies(dimension_name: str,
                  accept: Callable[[Hashable], bool],
                  category_name: Optional[str] = None) -> Predicate:
    """Facts characterized by a value whose surrogate satisfies
    ``accept`` — handy for numeric dimensions (Age > 40).

    Only values of ``category_name`` are considered (the dimension's ⊥
    category by default), so ``accept`` never sees surrogates of
    grouping values or ⊤.
    """

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        candidate = values[dimension_name]
        if candidate.is_top:
            return False
        dimension = ctx.mo.dimension(dimension_name)
        target = category_name or dimension.dtype.bottom_name
        if not dimension.category(target).contains(candidate):
            return False
        return accept(candidate.sid)

    return Predicate(dims=(dimension_name,), test=test,
                     description=f"{dimension_name}.sid matches")


def rep_equals(dimension_name: str, category_name: str, rep_name: str,
               rep_value: Hashable,
               at: Optional[Chronon] = None) -> Predicate:
    """Facts characterized by the value whose representation equals
    ``rep_value`` — e.g. Diagnosis.Code = "E10".  Representation lookups
    may be time-qualified (Code(8) was "D1" only during the 70s)."""

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        candidate = values[dimension_name]
        dimension = ctx.mo.dimension(dimension_name)
        category = dimension.category(category_name)
        if candidate not in category:
            return False
        rep = dimension.representation(category_name, rep_name)
        return rep.of(candidate, at=at) == rep_value

    return Predicate(dims=(dimension_name,), test=test,
                     description=f"{rep_name}({dimension_name}) = {rep_value!r}")


def characterized_during(dimension_name: str, value: DimensionValue,
                         window: TimeSet) -> Predicate:
    """Temporal predicate: ``f ⇝ value`` during some chronon of
    ``window`` (§4.2's time-referring predicates)."""

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        relation = ctx.mo.relation(dimension_name)
        dimension = ctx.mo.dimension(dimension_name)
        char_time = relation.characterization_time(ctx.fact, value, dimension)
        return char_time.overlaps(window)

    return Predicate(dims=(dimension_name,), test=test,
                     description=f"{dimension_name} ⇝ {value!r} during {window!r}")


def characterized_with_certainty(dimension_name: str, value: DimensionValue,
                                 min_prob: float) -> Predicate:
    """Probabilistic predicate: ``f ⇝ value`` with probability at least
    ``min_prob`` (the min-certainty selection of the uncertainty
    extension)."""

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        relation = ctx.mo.relation(dimension_name)
        dimension = ctx.mo.dimension(dimension_name)
        prob = relation.characterization_probability(
            ctx.fact, value, dimension)
        return prob >= min_prob

    return Predicate(
        dims=(dimension_name,), test=test,
        description=f"P({dimension_name} ⇝ {value!r}) ≥ {min_prob}")


def conjunction(*predicates: Predicate) -> Predicate:
    """``p1 ∧ p2 ∧ ..`` — the combined predicate constrains the union of
    the operands' dimensions."""
    dims = tuple(dict.fromkeys(d for p in predicates for d in p.dims))

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        return all(p(values, ctx) for p in predicates)

    return Predicate(dims=dims, test=test,
                     description=" ∧ ".join(p.description for p in predicates),
                     kind="conjunction", payload=tuple(predicates))


def disjunction(*predicates: Predicate) -> Predicate:
    """``p1 ∨ p2 ∨ ..``."""
    dims = tuple(dict.fromkeys(d for p in predicates for d in p.dims))

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        return any(p(values, ctx) for p in predicates)

    return Predicate(dims=dims, test=test,
                     description=" ∨ ".join(p.description for p in predicates))


def negation(predicate: Predicate) -> Predicate:
    """``¬p``.  Note the existential semantics of selection: a fact
    qualifies if *some* characterizing tuple fails ``predicate``."""

    def test(values: Dict[str, DimensionValue], ctx: SelectionContext) -> bool:
        return not predicate(values, ctx)

    return Predicate(dims=predicate.dims, test=test,
                     description=f"¬({predicate.description})")
