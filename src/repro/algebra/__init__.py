"""The algebra on multidimensional objects (paper §4).

Fundamental operators: σ (:func:`select`), π (:func:`project`),
ρ (:func:`rename`), ∪ (:func:`union`), \\ (:func:`difference`),
⋈ (:func:`identity_join`), and α (:func:`aggregate`); the derived
operators of §4.1's closing paragraph live in
:mod:`repro.algebra.derived`; closure checking (Theorem 1) in
:mod:`repro.algebra.closure`.
"""

from repro.algebra.aggregate import (
    aggregate,
    aggregate_schema,
    dtype_with_aggtypes,
    rebuild_with_aggtypes,
    summarizability_of,
)
from repro.algebra.closure import ClosureReport, validate_closed
from repro.algebra.derived import (
    drill_down,
    duplicate_removal,
    roll_up,
    sql_aggregation,
    star_join,
    value_based_join,
)
from repro.algebra.drill_across import drill_across, drill_across_family
from repro.algebra.functions import (
    AggregationFunction,
    Avg,
    CountDim,
    Max,
    Median,
    Min,
    SetCount,
    Sum,
    SumProduct,
    measures_of,
)
from repro.algebra.join import JoinPredicate, identity_join, join_schema
from repro.algebra.predicates import (
    Predicate,
    SelectionContext,
    characterized_by,
    characterized_during,
    characterized_with_certainty,
    conjunction,
    disjunction,
    negation,
    rep_equals,
    sid_satisfies,
    value_in_category,
)
from repro.algebra.projection import project, project_schema
from repro.algebra.rename import (
    rename,
    rename_dimension,
    rename_dimension_type,
    rename_schema,
)
from repro.algebra.selection import select, select_schema
from repro.algebra.setops import (
    difference,
    difference_schema,
    union,
    union_schema,
)

__all__ = [
    "aggregate",
    "aggregate_schema",
    "dtype_with_aggtypes",
    "rebuild_with_aggtypes",
    "summarizability_of",
    "ClosureReport",
    "validate_closed",
    "drill_down",
    "duplicate_removal",
    "roll_up",
    "sql_aggregation",
    "star_join",
    "value_based_join",
    "drill_across",
    "drill_across_family",
    "AggregationFunction",
    "Avg",
    "CountDim",
    "Max",
    "Median",
    "Min",
    "SetCount",
    "Sum",
    "SumProduct",
    "measures_of",
    "JoinPredicate",
    "identity_join",
    "join_schema",
    "Predicate",
    "SelectionContext",
    "characterized_by",
    "characterized_during",
    "characterized_with_certainty",
    "conjunction",
    "disjunction",
    "negation",
    "rep_equals",
    "sid_satisfies",
    "value_in_category",
    "project",
    "project_schema",
    "rename",
    "rename_dimension",
    "rename_dimension_type",
    "rename_schema",
    "select",
    "select_schema",
    "difference",
    "difference_schema",
    "union",
    "union_schema",
]
