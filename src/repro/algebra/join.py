"""The identity-based join ⋈ (paper §4.1 and §4.2).

``M1 ⋈[p] M2``: the new fact type is the type of *pairs* of the old
fact types; the new fact set is the subset of ``F1 × F2`` where the join
predicate ``p(f1, f2) ∈ {f1 = f2, f1 ≠ f2, true}`` holds; the set of
dimensions is the union of the old sets; and a pair is related to a
value if one member of the pair was related to it before.  For ``p``
equal to ``f1 = f2``, ``f1 ≠ f2``, and ``true``, the operation is an
equi-join, a non-equi-join, and a Cartesian product.

Temporal rule (§4.2): a pair's fact-dimension entries inherit their time
from the relevant argument MO's relation.

Dimension names of the two operands must be disjoint; use rename first
(that is what ρ is for).
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.core.errors import AlgebraError
from repro.core.factdim import FactDimensionRelation
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import Fact

__all__ = ["JoinPredicate", "identity_join", "join_schema"]


def join_schema(s1: FactSchema, s2: FactSchema) -> FactSchema:
    """⋈'s schema-inference hook: the output schema of ``M1 ⋈ M2`` —
    the pair fact type over the concatenated dimension types — raising
    the same :class:`AlgebraError` the runtime operator would for
    overlapping dimension names.  Used by the static plan typechecker
    (:mod:`repro.analyze`)."""
    overlap = set(s1.dimension_names) & set(s2.dimension_names)
    if overlap:
        raise AlgebraError(
            f"join operands share dimension names {sorted(overlap)}; "
            f"apply rename (ρ) first"
        )
    return FactSchema(
        f"({s1.fact_type},{s2.fact_type})",
        s1.dimension_types() + s2.dimension_types(),
    )


class JoinPredicate(enum.Enum):
    """The three permitted join predicates on fact identities."""

    EQUAL = "f1 = f2"
    NOT_EQUAL = "f1 ≠ f2"
    TRUE = "true"

    def holds(self, f1: Fact, f2: Fact) -> bool:
        """Evaluate the predicate on a pair of facts.

        Fact identity compares the underlying ``fid`` (the fact types of
        the operands legitimately differ after renames, and the paper's
        equi-join is meant to re-unite facts of the *same* object)."""
        if self is JoinPredicate.EQUAL:
            return f1.fid == f2.fid
        if self is JoinPredicate.NOT_EQUAL:
            return f1.fid != f2.fid
        return True


def identity_join(
    m1: MultidimensionalObject,
    m2: MultidimensionalObject,
    predicate: JoinPredicate = JoinPredicate.TRUE,
) -> MultidimensionalObject:
    """``M1 ⋈[predicate] M2``."""
    if m1.kind != m2.kind:
        raise AlgebraError(
            f"join requires operands of the same temporal kind; got "
            f"{m1.kind.value} vs {m2.kind.value}"
        )
    join_schema(m1.schema, m2.schema)
    pair_type = f"({m1.schema.fact_type},{m2.schema.fact_type})"
    pairs: Dict[Fact, tuple] = {}
    for f1 in m1.facts:
        for f2 in m2.facts:
            if predicate.holds(f1, f2):
                pair = Fact(fid=(f1.fid, f2.fid), ftype=pair_type)
                pairs[pair] = (f1, f2)

    dimensions = {}
    relations = {}
    for source, member_index in ((m1, 0), (m2, 1)):
        for name in source.dimension_names:
            dimensions[name] = source.dimension(name)
            relation = FactDimensionRelation(name)
            source_relation = source.relation(name)
            by_member: Dict[Fact, list] = {}
            for fact, value, time, prob in source_relation.annotated_pairs():
                by_member.setdefault(fact, []).append((value, time, prob))
            for pair, members in pairs.items():
                for value, time, prob in by_member.get(members[member_index],
                                                       ()):
                    relation.add(pair, value, time=time, prob=prob)
            relations[name] = relation

    schema = FactSchema(
        pair_type,
        [m1.schema.dimension_type(n) for n in m1.dimension_names]
        + [m2.schema.dimension_type(n) for n in m2.dimension_names],
    )
    return MultidimensionalObject(
        schema=schema,
        facts=set(pairs),
        dimensions=dimensions,
        relations=relations,
        kind=m1.kind,
    )
