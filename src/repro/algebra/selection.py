"""The selection operator σ (paper §4.1).

``σ[p](M) = (S', F', D', R')`` with ``S' = S``, ``D' = D``,
``F' = {f ∈ F | ∃e_1 ∈ D_1, .., e_n ∈ D_n (p(e_1, .., e_n) ∧ f ⇝_1 e_1
∧ .. ∧ f ⇝_n e_n)}``, and each ``R'_i`` restricted to the surviving
facts.  The set of facts is restricted to those characterized by values
where p evaluates to true; dimensions and schema stay the same, and —
per §4.2 — selection does not change the time attached to the result.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Set

from repro.algebra.predicates import Predicate, SelectionContext
from repro.core.errors import SchemaError
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact

__all__ = ["select", "select_schema"]


def select_schema(schema: FactSchema, predicate: Predicate) -> FactSchema:
    """σ's schema-inference hook: the output schema of
    ``σ[predicate]`` over an input with ``schema`` (``S' = S``), raising
    the same :class:`SchemaError` the runtime operator would for a
    predicate constraining an unknown dimension.  Used by the static
    plan typechecker (:mod:`repro.analyze`) — no fact data involved."""
    for name in predicate.dims:
        if name not in schema:
            raise SchemaError(
                f"predicate constrains unknown dimension {name!r}"
            )
    return schema


def _candidate_values(mo: MultidimensionalObject, fact: Fact,
                      dimension_name: str) -> Set[DimensionValue]:
    """All values ``e`` with ``f ⇝ e`` in the dimension: the ancestors of
    the fact's base values (including the base values and ⊤)."""
    dimension = mo.dimension(dimension_name)
    relation = mo.relation(dimension_name)
    out: Set[DimensionValue] = set()
    for base in relation.values_of(fact):
        out |= dimension.ancestors(base, reflexive=True)
    return out


def select(mo: MultidimensionalObject,
           predicate: Predicate) -> MultidimensionalObject:
    """Apply ``σ[predicate]`` to ``mo``.

    The existential quantification over value tuples is evaluated per
    fact over the fact's *characterizing* values in each dimension the
    predicate constrains; unconstrained dimensions are witnessed by ⊤
    (every fact is characterized by ⊤, so they never exclude a fact).
    """
    select_schema(mo.schema, predicate)
    surviving: Set[Fact] = set()
    for fact in mo.facts:
        ctx = SelectionContext(mo=mo, fact=fact)
        candidate_sets: List[List[DimensionValue]] = []
        for name in predicate.dims:
            candidates = _candidate_values(mo, fact, name)
            candidate_sets.append(sorted(candidates, key=repr))
        if not predicate.dims:
            if predicate({}, ctx):
                surviving.add(fact)
            continue
        for combo in product(*candidate_sets):
            values: Dict[str, DimensionValue] = dict(zip(predicate.dims, combo))
            if predicate(values, ctx):
                surviving.add(fact)
                break
    relations = {
        name: mo.relation(name).restricted_to_facts(surviving)
        for name in mo.dimension_names
    }
    return MultidimensionalObject(
        schema=mo.schema,
        facts=surviving,
        dimensions={name: mo.dimension(name) for name in mo.dimension_names},
        relations=relations,
        kind=mo.kind,
    )
