"""The aggregate formation operator α (paper §4.1 and §4.2).

``α[D_{n+1}, g, C_1, .., C_n](M)``: for every combination ``(e_1, ..,
e_n)`` of values in the given grouping categories, apply ``g`` to the
set ``Group(e_1, .., e_n)`` of facts characterized by the combination,
and place the result in the new dimension ``D_{n+1}``:

* the new facts are the non-empty groups — *sets* of the argument facts
  (type ``2^F``);
* each argument dimension is restricted upward: only the category types
  ``≥ Type(C_i)`` remain, with ``Type(C_i)`` the new ⊥;
* the fact-dimension relations link each group to its combination and
  the result relation links each group to ``g``'s result on it;
* the **aggregation type propagation rule** guards further aggregation:
  if ``g`` is distributive, the paths up to the grouping categories are
  strict, and the hierarchies up to them are partitioning (i.e. ``g`` is
  summarizable there), the result's ⊥ aggregation type is the minimum of
  the argument ⊥ types; otherwise it is ``c``, so "unsafe" results that
  contain overlapping data cannot be aggregated further — the mechanism
  that prevents accidental double counting.

Temporal rules (§4.2): a group's entry for ``e_i`` carries the
intersection of its members' characterization times; the result entry
carries the intersection over the members and the argument dimensions of
``g``.
"""

from __future__ import annotations

import warnings
from itertools import product
from typing import Dict, List, Optional, Set, Tuple

from repro.algebra.functions import AggregationFunction
from repro.core.aggtypes import AggregationType, min_aggtype
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import SchemaError, SummarizabilityWarning
from repro.core.factdim import FactDimensionRelation
from repro.core.helpers import ResultSpec
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.properties import SummarizabilityCheck, check_summarizability
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.obs import metrics, trace
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import ALWAYS, TimeSet, coalesce_intersection

__all__ = ["aggregate", "rebuild_with_aggtypes", "aggregate_schema",
           "dtype_with_aggtypes"]

_PATH_KERNEL = metrics.counter("aggregate.path.kernel")
_PATH_INDEXED = metrics.counter("aggregate.path.indexed")
_PATH_NAIVE = metrics.counter("aggregate.path.naive")
_PATH_TEMPORAL = metrics.counter("aggregate.path.temporal")
_KERNEL_FALLBACK = metrics.counter("aggregate.kernel.fallback")
_KERNEL_ROWS = metrics.histogram("aggregate.kernel.batch_rows")
_GROUPS = metrics.histogram("aggregate.groups")


def dtype_with_aggtypes(
    dtype: DimensionType,
    aggtype_map: Dict[str, AggregationType],
) -> DimensionType:
    """The intension-level half of :func:`rebuild_with_aggtypes`: the
    same lattice with new aggregation types per category type
    (declarations preserved — changing ``Aggtype_T`` does not touch the
    order)."""
    ctypes: List[CategoryType] = []
    for ctype in dtype.category_types():
        new_aggtype = aggtype_map.get(ctype.name, ctype.aggtype)
        ctypes.append(CategoryType(
            name=ctype.name, aggtype=new_aggtype,
            is_top=ctype.is_top, is_bottom=ctype.is_bottom))
    edges = []
    for ctype in dtype.category_types():
        for parent in dtype.pred(ctype.name):
            if parent == dtype.top_name:
                continue
            edges.append((ctype.name, parent))
    return DimensionType(
        dtype.name, ctypes, edges,
        declared_strict=dtype.declared_strict,
        declared_partitioning=dtype.declared_partitioning,
    )


def _propagated_aggtype_map(
    result_dtype: DimensionType,
    bottom_aggtype: AggregationType,
) -> Dict[str, AggregationType]:
    """The propagation rule's per-category map for the result dimension:
    the new ⊥ type at the bottom, and no category above may exceed it."""
    aggtype_map = {result_dtype.bottom_name: bottom_aggtype}
    for ctype in result_dtype.category_types():
        if ctype.is_top or ctype.name == result_dtype.bottom_name:
            continue
        aggtype_map[ctype.name] = min((ctype.aggtype, bottom_aggtype))
    return aggtype_map


def aggregate_schema(
    schema: FactSchema,
    function: AggregationFunction,
    grouping: Dict[str, str],
    result: ResultSpec,
    summarizable: bool = True,
) -> FactSchema:
    """α's schema-inference hook: the output fact schema of
    ``α[result, function, grouping]`` over an input with ``schema`` —
    Theorem 1's closure argument made executable, no fact data involved.

    Raises the same :class:`SchemaError` the runtime operator would for
    groupings naming unknown dimensions or categories, a colliding
    result-dimension name, or function arguments outside the schema.
    ``summarizable`` supplies the Lenz-Shoshani verdict the propagation
    rule depends on (the one ingredient the schema alone cannot always
    decide): ``True`` yields the optimistic result type (⊥ = min of the
    argument ⊥ types), ``False`` the pessimistic ``c``.  The static
    analyzer calls this twice to bracket the truth when the verdict is
    unknown."""
    for name, cat in grouping.items():
        if name not in schema:
            raise SchemaError(f"grouping names unknown dimension {name!r}")
        dtype = schema.dimension_type(name)
        if cat not in dtype:
            raise SchemaError(
                f"dimension {name!r} has no category {cat!r}"
            )
    if result.name in schema:
        raise SchemaError(
            f"result dimension {result.name!r} collides with an existing "
            f"dimension; rename first"
        )
    for arg in function.args:
        if arg not in schema:
            raise SchemaError(
                f"schema has no dimension type {arg!r}"
            )
    if summarizable:
        bottom_aggtype = min_aggtype(
            schema.dimension_type(d).bottom.aggtype for d in function.args
        )
    else:
        bottom_aggtype = AggregationType.CONSTANT
    result_dtype = dtype_with_aggtypes(
        result.dimension.dtype,
        _propagated_aggtype_map(result.dimension.dtype, bottom_aggtype),
    )
    dtypes = [
        schema.dimension_type(name).restricted_upward(
            grouping.get(name, schema.dimension_type(name).top_name))
        for name in schema.dimension_names
    ]
    return FactSchema(f"Set-of-{schema.fact_type}", dtypes + [result_dtype])


def rebuild_with_aggtypes(
    dimension: Dimension,
    aggtype_map: Dict[str, AggregationType],
) -> Dimension:
    """Rebuild a dimension with new aggregation types per category.

    Category types are immutable, so the propagation rule re-creates the
    result dimension's type with the computed aggregation types; values,
    order, and representations are copied unchanged.
    """
    dtype = dtype_with_aggtypes(dimension.dtype, aggtype_map)
    result = Dimension(dtype)
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        for value, time in category.items():
            result.add_value(category.name, value, time)
    for child, parent, time, prob in dimension.order.edges():
        result.add_edge(child, parent, time=time, prob=prob)
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        for rep_name, rep in dimension.representations_of(category.name).items():
            target = result.add_representation(category.name, rep_name)
            for value, rep_value, time in rep.entries():
                target.assign(value, rep_value, time)
    return result


def _grouping_values_per_fact(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
    at: Optional[Chronon],
    use_index: bool = True,
) -> Dict[Fact, List[DimensionValue]]:
    """For each fact, the grouping-category values characterizing it,
    deterministically ordered by interned value id.

    Grouping at the ⊤ category is the trivial grouping: *every* fact is
    characterized by ⊤ — including, at a chronon, facts whose pairs in
    this dimension are not valid then (⊤ is the paper's "cannot
    characterize within this dimension" marker, exactly what a
    valid-timeslice inserts for such facts).  This keeps α(…, at=t)
    consistent with α after τ_v(…, t).

    The indexed path answers from the MO's rollup index (one inverted
    closure lookup per category); ``use_index=False`` keeps the naive
    per-value traversal — the oracle the equivalence tests compare
    against.
    """
    if use_index:
        return mo.rollup_index().grouping_values_per_fact(
            dimension_name, category_name, at=at)
    dimension = mo.dimension(dimension_name)
    if category_name == dimension.dtype.top_name:
        top = dimension.top_value
        return {fact: [top] for fact in mo.facts}
    relation = mo.relation(dimension_name)
    out: Dict[Fact, Set[DimensionValue]] = {}
    for value in dimension.category(category_name).members(at=at):
        for fact in relation.facts_characterized_by(value, dimension, at=at):
            out.setdefault(fact, set()).add(value)
    # the pre-index ordering (repr-sort per fact), kept verbatim so this
    # path stays a faithful oracle of the original behavior; it never
    # touches the rollup index
    return {
        fact: sorted(values, key=repr)
        for fact, values in out.items()
    }


def _form_groups(
    mo: MultidimensionalObject,
    full_grouping: Dict[str, str],
    dim_order: List[str],
    at: Optional[Chronon],
    use_index: bool,
) -> Dict[Tuple[DimensionValue, ...], Set[Fact]]:
    """Group formation on value/fact objects (the temporal and naive
    paths).  Per-fact value lists arrive deterministically ordered
    (id-sorted on the indexed path, repr-sorted on the naive oracle), so
    combination order needs no re-sorting."""
    per_dim_values: Dict[str, Dict[Fact, List[DimensionValue]]] = {
        name: _grouping_values_per_fact(mo, name, cat, at,
                                        use_index=use_index)
        for name, cat in full_grouping.items()
    }
    groups: Dict[Tuple[DimensionValue, ...], Set[Fact]] = {}
    for fact in mo.facts:
        value_sets = []
        for name in dim_order:
            values = per_dim_values[name].get(fact)
            if not values:
                break  # not characterized at this granularity: in no group
            value_sets.append(values)
        else:
            for combo in product(*value_sets):
                groups.setdefault(tuple(combo), set()).add(fact)
    return groups


def _form_groups_interned(
    mo: MultidimensionalObject,
    full_grouping: Dict[str, str],
    dim_order: List[str],
) -> Dict[Tuple[DimensionValue, ...], Set[Fact]]:
    """Group formation on interned ids (the untimed indexed path).

    The per-fact combination loop — the hot loop of α over large MOs —
    touches only dense integers: fact ids, value-id tuples, and int-tuple
    group keys.  Each distinct combination is converted back to value
    objects once, and each group's fact ids are materialized once, so
    value/fact hashing drops out of the per-fact work entirely.
    """
    index = mo.rollup_index()
    id_maps: Dict[str, Optional[Dict[int, Tuple[int, ...]]]] = {}
    top_vids: Dict[str, Tuple[int, ...]] = {}
    for name, cat in full_grouping.items():
        dimension = mo.dimension(name)
        if cat == dimension.dtype.top_name:
            # trivial grouping: every fact maps to ⊤, no per-fact table
            id_maps[name] = None
            top_vids[name] = (index.value_id(name, dimension.top_value),)
        else:
            id_maps[name] = index.grouping_value_ids_per_fact(name, cat)
    nontrivial_maps = [m for m in id_maps.values() if m is not None]
    if not nontrivial_maps:
        # every dimension grouped at ⊤: one group holding every fact
        if not mo.facts:
            return {}
        top_combo = tuple(
            mo.dimension(name).top_value for name in dim_order)
        return {top_combo: set(mo.facts)}
    # only facts present in every non-trivial map land in a group, so
    # iterating the smallest map's keys visits no fact object at all;
    # the id-level F membership check keeps α grouping exactly the MO's
    # facts even if a relation mentions strays
    candidates = min(nontrivial_maps, key=len)
    mo_fact_ids = index.mo_fact_ids()
    group_ids: Dict[Tuple[int, ...], List[int]] = {}
    for fact_id in candidates:
        if fact_id not in mo_fact_ids:
            continue
        vid_sets = []
        for name in dim_order:
            id_map = id_maps[name]
            vids = top_vids[name] if id_map is None else id_map.get(fact_id)
            if not vids:
                break  # not characterized at this granularity: in no group
            vid_sets.append(vids)
        else:
            for combo in product(*vid_sets):
                group_ids.setdefault(combo, []).append(fact_id)
    return {
        tuple(index.value_of(name, vid)
              for name, vid in zip(dim_order, combo)):
        set(index.facts_of_ids(fact_ids))
        for combo, fact_ids in group_ids.items()
    }


def aggregate(
    mo: MultidimensionalObject,
    function: AggregationFunction,
    grouping: Dict[str, str],
    result: ResultSpec,
    strict_types: bool = True,
    at: Optional[Chronon] = None,
    use_index: bool = True,
    use_kernel: bool = True,
) -> MultidimensionalObject:
    """Apply ``α[result, function, grouping]`` to ``mo``.

    ``grouping`` maps dimension names to the grouping category in each;
    omitted dimensions group by their ⊤ category (the trivial grouping).
    ``result`` supplies the result dimension ``D_{n+1}`` and the mapping
    of raw results into its ⊥ category.  ``strict_types`` selects the
    paper's "prevent" mode for the aggregation-type check; otherwise a
    :class:`SummarizabilityWarning` is issued and evaluation proceeds.
    ``at`` evaluates the grouping at one chronon (used by temporal
    analysis so each fact is counted at a single point in time, which
    extends summarizability to snapshot-strict/partitioning hierarchies).
    ``use_index=False`` forces the naive per-value traversal for group
    formation instead of the MO's rollup index — the reference path the
    equivalence tests and benchmarks compare against.  ``use_kernel=
    False`` keeps the index but disables the columnar batch kernels
    (the interned object path), the middle rung of the 3-way
    equivalence ladder; the kernels themselves fall back to it when the
    function has no :meth:`~AggregationFunction.batch_apply` kernel, a
    measure column is poisoned, or the grouping's key space overflows.
    """
    for name in grouping:
        if name not in mo.schema:
            raise SchemaError(f"grouping names unknown dimension {name!r}")
    if result.name in mo.schema:
        raise SchemaError(
            f"result dimension {result.name!r} collides with an existing "
            f"dimension; rename first"
        )
    full_grouping: Dict[str, str] = {}
    for name in mo.dimension_names:
        full_grouping[name] = grouping.get(
            name, mo.dimension(name).dtype.top_name)

    applicable = function.check_applicable(mo, strict=strict_types)
    if not applicable:
        warnings.warn(
            f"{function.name} applied to data whose aggregation type does "
            f"not permit it; the result may be meaningless",
            SummarizabilityWarning,
            stacklevel=2,
        )

    # -- form the groups ---------------------------------------------------
    dim_order = list(mo.dimension_names)
    kernel_results: Optional[Dict[Tuple[DimensionValue, ...], object]] = None
    with trace.span("aggregate.alpha", grouping=tuple(sorted(grouping)),
                    function=function.name, n_facts=len(mo.facts)):
        if use_index and at is None:
            # full_grouping iterates mo.dimension_names, so the columnar
            # combos come back already in dim_order
            columnar = (mo.rollup_index().columnar().grouping(full_grouping)
                        if use_kernel else None)
            if columnar is not None:
                groups = columnar.groups()
                _KERNEL_ROWS.observe(columnar.n_rows)
                kernel_results = columnar.evaluate(function)
                if kernel_results is None:
                    _KERNEL_FALLBACK.inc()
                    _PATH_INDEXED.inc()
                else:
                    _PATH_KERNEL.inc()
            else:
                _PATH_INDEXED.inc()
                groups = _form_groups_interned(mo, full_grouping, dim_order)
        else:
            (_PATH_TEMPORAL if at is not None else _PATH_NAIVE).inc()
            groups = _form_groups(mo, full_grouping, dim_order, at, use_index)
    _GROUPS.observe(len(groups))

    # -- summarizability and the aggregation-type propagation rule ----------
    nontrivial = {
        name: cat for name, cat in full_grouping.items()
        if cat != mo.dimension(name).dtype.top_name
    }
    if use_index:
        # version-keyed verdict cache: the check re-scans hierarchies and
        # base mappings, which dominates repeated aggregate formations
        summarizability = mo.rollup_index().summarizability(
            nontrivial, function.distributive, at=at)
    else:
        summarizability = check_summarizability(
            mo, nontrivial, function.distributive, at=at)
    if summarizability.summarizable:
        bottom_aggtype = min_aggtype(
            mo.dimension(d).dtype.bottom.aggtype for d in function.args
        )
    else:
        bottom_aggtype = AggregationType.CONSTANT
    aggtype_map = _propagated_aggtype_map(result.dimension.dtype,
                                          bottom_aggtype)

    # -- evaluate g and build the result relations ---------------------------
    set_fact_type = f"Set-of-{mo.schema.fact_type}"
    new_facts: Dict[Tuple[DimensionValue, ...], Fact] = {
        combo: Fact.group(members, ftype=set_fact_type)
        for combo, members in groups.items()
    }
    if kernel_results is not None:
        raw_results: Dict[Tuple[DimensionValue, ...], object] = kernel_results
    else:
        raw_results = {
            combo: function.apply(members, mo)
            for combo, members in groups.items()
        }

    # materialize result values first (the spec's dimension grows on demand)
    result_values = {
        combo: result.value_for(raw) for combo, raw in raw_results.items()
    }
    result_dimension = rebuild_with_aggtypes(result.dimension, aggtype_map)

    restricted_dims: Dict[str, Dimension] = {}
    dtypes: List[DimensionType] = []
    for name in dim_order:
        dimension = mo.dimension(name)
        cat = full_grouping[name]
        restricted_dtype = dimension.dtype.restricted_upward(cat)
        keep = [c for c in restricted_dtype.category_types()
                if not c.is_top]
        restricted = dimension.subdimension(
            [c.name for c in keep], dtype=restricted_dtype)
        restricted_dims[name] = restricted
        dtypes.append(restricted.dtype)
    dtypes.append(result_dimension.dtype)

    relations: Dict[str, FactDimensionRelation] = {
        name: FactDimensionRelation(name) for name in dim_order
    }
    relations[result.name] = FactDimensionRelation(result.name)
    snapshot = mo.kind is TimeKind.SNAPSHOT
    for combo, members in groups.items():
        set_fact = new_facts[combo]
        member_times: Dict[str, TimeSet] = {}
        for name, value in zip(dim_order, combo):
            if snapshot:
                time = ALWAYS
            else:
                dimension = mo.dimension(name)
                relation = mo.relation(name)
                times = [
                    relation.characterization_time(f, value, dimension)
                    for f in members
                ]
                time = coalesce_intersection(times)
            member_times[name] = time
            target_value = (restricted_dims[name].top_value
                            if value.is_top else value)
            if time.is_empty():
                # the members share no chronon of characterization by
                # this value: the *group* cannot be placed in the
                # dimension at any single instant, which the model
                # expresses with the ⊤ marker (no missing values)
                relations[name].add(set_fact,
                                    restricted_dims[name].top_value)
            else:
                relations[name].add(set_fact, target_value, time=time)
        if snapshot or not function.args:
            result_time = ALWAYS
        else:
            result_time = coalesce_intersection(
                [member_times[name] for name in function.args])
        if result_time.is_empty():
            relations[result.name].add(
                set_fact, result_dimension.top_value)
        else:
            relations[result.name].add(
                set_fact, result_values[combo], time=result_time)

    schema = FactSchema(set_fact_type, dtypes)
    dimensions = dict(restricted_dims)
    dimensions[result.name] = result_dimension
    return MultidimensionalObject(
        schema=schema,
        facts=set(new_facts.values()),
        dimensions=dimensions,
        relations=relations,
        kind=mo.kind,
    )


def summarizability_of(
    mo: MultidimensionalObject,
    function: AggregationFunction,
    grouping: Dict[str, str],
    at: Optional[Chronon] = None,
) -> SummarizabilityCheck:
    """The Lenz-Shoshani verdict α would use for this aggregation —
    exposed so callers (and the pre-aggregation engine) can inspect the
    rule without running the operator.

    Answered from the rollup index's version-keyed verdict cache, the
    same cache α's indexed path uses, so inspecting the rule before an
    aggregation costs nothing extra during the aggregation itself.
    """
    nontrivial = {
        name: cat for name, cat in grouping.items()
        if cat != mo.dimension(name).dtype.top_name
    }
    return mo.rollup_index().summarizability(
        nontrivial, function.distributive, at=at)


__all__ += ["summarizability_of"]


def partition_facts(mo: MultidimensionalObject,
                    n_shards: int) -> List[Set[Fact]]:
    """Deterministically split ``mo``'s fact set into ``n_shards``
    contiguous ranges of the repr-sorted fact list (the reference
    stand-in for the interned-id range partitioning the sharded
    executor will use).  Shards may be empty when facts are scarce;
    their union is exactly ``mo.facts`` and they are pairwise
    disjoint."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ordered = sorted(mo.facts, key=repr)
    size, extra = divmod(len(ordered), n_shards)
    shards: List[Set[Fact]] = []
    start = 0
    for i in range(n_shards):
        stop = start + size + (1 if i < extra else 0)
        shards.append(set(ordered[start:stop]))
        start = stop
    return shards


def restricted_to_facts(mo: MultidimensionalObject,
                        facts: Set[Fact]) -> MultidimensionalObject:
    """The sub-MO over a subset of ``mo``'s facts: same schema and
    dimensions, every fact-dimension relation restricted to the subset
    (σ's construction without the predicate evaluation) — the shard
    an executor hands to a worker."""
    surviving = set(facts) & set(mo.facts)
    relations = {
        name: mo.relation(name).restricted_to_facts(surviving)
        for name in mo.dimension_names
    }
    return MultidimensionalObject(
        schema=mo.schema,
        facts=surviving,
        dimensions={name: mo.dimension(name)
                    for name in mo.dimension_names},
        relations=relations,
        kind=mo.kind,
    )


def aggregate_sharded(
    mo: MultidimensionalObject,
    function: AggregationFunction,
    grouping: Dict[str, str],
    n_shards: int = 2,
    partial=None,
    merge=None,
) -> Dict[Tuple[DimensionValue, ...], object]:
    """Reference partition-and-merge execution of one α: partition the
    fact set into ``n_shards`` sub-MOs, form groups and evaluate
    ``function`` per shard, and merge per-combination partials with
    ``function.combine`` — the semantics the MD07x shardability
    analyzer vouches for, kept executable so its verdicts can be
    checked against ``aggregate_sharded(…, n_shards=1)`` (plain
    evaluation) in the property tests.

    Returns ``{grouped-value combination → merged result}`` with
    combinations as tuples over ``sorted(grouping)``.  ``partial`` /
    ``merge`` override the per-shard evaluator and the merge step for
    ALGEBRAIC functions, which shard via accumulator *states* (e.g.
    AVG's (sum, count) pairs) rather than finished results; the
    defaults are ``function.apply`` / ``function.combine``.  A
    combination seen in a single shard keeps its partial unmerged, the
    way a real sharded executor would skip the combine for singleton
    cells.

    Exact only when the analyzer's preconditions hold (DISTRIBUTIVE or
    decomposed-ALGEBRAIC function, grouping summarizability SAFE):
    non-strict fact paths make shards overlap per combination and the
    merge double-counts — exactly what ``MD072`` warns about.
    """
    for name in grouping:
        if name not in mo.schema:
            raise SchemaError(
                f"grouping names unknown dimension {name!r}")
    if partial is None:
        partial = function.apply
    if merge is None:
        merge = function.combine
    full_grouping = {
        name: grouping.get(name, mo.dimension(name).dtype.top_name)
        for name in mo.dimension_names
    }
    dim_order = list(mo.dimension_names)
    names = sorted(grouping)
    positions = [dim_order.index(name) for name in names]

    merged: Dict[Tuple[DimensionValue, ...], List[object]] = {}
    for shard in partition_facts(mo, n_shards):
        sub = restricted_to_facts(mo, shard)
        groups = _form_groups(sub, full_grouping, dim_order, None,
                              use_index=True)
        for combo, members in groups.items():
            if not members:
                continue
            key = tuple(combo[i] for i in positions)
            merged.setdefault(key, []).append(partial(members, sub))
    return {
        key: (partials[0] if len(partials) == 1 else merge(partials))
        for key, partials in merged.items()
    }


__all__ += ["partition_facts", "restricted_to_facts",
            "aggregate_sharded"]
