"""Closure checking (paper Theorem 1: "The algebra is closed").

Every operator must return a well-formed multidimensional object: a
valid schema, facts of the schema's fact type, dimensions matching their
dimension types, and fact-dimension relations that stay within the fact
set and the dimensions, with no missing values.  :func:`validate_closed`
checks all of it and returns a diagnostic report; the property-based
closure tests drive randomized MOs through every operator and assert the
report is clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.errors import InstanceError, ReproError, SchemaError
from repro.core.mo import MultidimensionalObject

__all__ = ["ClosureReport", "validate_closed"]


@dataclass
class ClosureReport:
    """Outcome of a closure validation."""

    ok: bool
    problems: List[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        """Raise :class:`InstanceError` when any problem was found."""
        if not self.ok:
            raise InstanceError(
                "closure violated: " + "; ".join(self.problems)
            )


def validate_closed(mo: MultidimensionalObject) -> ClosureReport:
    """Check that ``mo`` is a well-formed MO.

    Beyond :meth:`MultidimensionalObject.validate`, this verifies the
    structural side conditions operators must preserve:

    * every dimension's type appears in the schema under the same name;
    * the ⊤ category of each dimension holds exactly the ⊤ value;
    * order edges connect values of the same dimension, upward in the
      category-type lattice (enforced by construction, re-checked here);
    * relation values are members of some category of their dimension.
    """
    problems: List[str] = []
    try:
        mo.validate()
    except (InstanceError, SchemaError) as exc:
        problems.append(str(exc))
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        if dimension.dtype.name != name:
            problems.append(
                f"dimension {name!r} has mismatched type "
                f"{dimension.dtype.name!r}"
            )
        top_members = dimension.top_category.members()
        if top_members != {dimension.top_value}:
            problems.append(
                f"dimension {name!r} ⊤ category holds {top_members!r}, "
                f"expected exactly the ⊤ value"
            )
        dtype = dimension.dtype
        for child, parent, time, prob in dimension.order.edges():
            try:
                child_cat = dimension.category_name_of(child)
                parent_cat = dimension.category_name_of(parent)
            except ReproError as exc:
                problems.append(str(exc))
                continue
            if not dtype.leq(child_cat, parent_cat):
                problems.append(
                    f"dimension {name!r} edge {child!r} ≤ {parent!r} goes "
                    f"against the category order"
                )
        relation = mo.relation(name)
        for fact, value in relation.pairs():
            if value not in dimension:
                problems.append(
                    f"relation {name!r} pair ({fact!r}, {value!r}) uses a "
                    f"value outside the dimension"
                )
    return ClosureReport(ok=not problems, problems=problems)
