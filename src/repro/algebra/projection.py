"""The projection operator π (paper §4.1).

``π[D_1, .., D_k](M)`` retains only the k specified dimensions; the set
of facts stays the same.  The paper is explicit that projection does
*not* remove "duplicate values": several facts may be associated with
the same combination of dimension values afterwards — facts have
identity, so no information is lost.  (Duplicate removal is a derived
operator built from aggregate formation; see
:mod:`repro.algebra.derived`.)
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import SchemaError
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema

__all__ = ["project"]


def project(mo: MultidimensionalObject,
            dimension_names: Sequence[str]) -> MultidimensionalObject:
    """Apply ``π[dimension_names]`` to ``mo``.

    At least one dimension must be kept (an MO has ``n ≥ 1``); names
    must be distinct and present in the schema.
    """
    if not dimension_names:
        raise SchemaError("projection must retain at least one dimension")
    if len(set(dimension_names)) != len(dimension_names):
        raise SchemaError(f"duplicate dimension names in {dimension_names!r}")
    for name in dimension_names:
        if name not in mo.schema:
            raise SchemaError(f"cannot project on unknown dimension {name!r}")
    schema = FactSchema(
        mo.schema.fact_type,
        [mo.schema.dimension_type(name) for name in dimension_names],
    )
    return MultidimensionalObject(
        schema=schema,
        facts=mo.facts,
        dimensions={name: mo.dimension(name) for name in dimension_names},
        relations={name: mo.relation(name) for name in dimension_names},
        kind=mo.kind,
    )
