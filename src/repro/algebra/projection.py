"""The projection operator π (paper §4.1).

``π[D_1, .., D_k](M)`` retains only the k specified dimensions; the set
of facts stays the same.  The paper is explicit that projection does
*not* remove "duplicate values": several facts may be associated with
the same combination of dimension values afterwards — facts have
identity, so no information is lost.  (Duplicate removal is a derived
operator built from aggregate formation; see
:mod:`repro.algebra.derived`.)
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import SchemaError
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema

__all__ = ["project", "project_schema"]


def project_schema(schema: FactSchema,
                   dimension_names: Sequence[str]) -> FactSchema:
    """π's schema-inference hook: the output schema of
    ``π[dimension_names]``, raising the same :class:`SchemaError` the
    runtime operator would (empty or duplicated dimension lists, unknown
    names).  Used by the static plan typechecker
    (:mod:`repro.analyze`)."""
    if not dimension_names:
        raise SchemaError("projection must retain at least one dimension")
    if len(set(dimension_names)) != len(dimension_names):
        raise SchemaError(f"duplicate dimension names in {dimension_names!r}")
    for name in dimension_names:
        if name not in schema:
            raise SchemaError(f"cannot project on unknown dimension {name!r}")
    return FactSchema(
        schema.fact_type,
        [schema.dimension_type(name) for name in dimension_names],
    )


def project(mo: MultidimensionalObject,
            dimension_names: Sequence[str]) -> MultidimensionalObject:
    """Apply ``π[dimension_names]`` to ``mo``.

    At least one dimension must be kept (an MO has ``n ≥ 1``); names
    must be distinct and present in the schema.
    """
    schema = project_schema(mo.schema, dimension_names)
    return MultidimensionalObject(
        schema=schema,
        facts=mo.facts,
        dimensions={name: mo.dimension(name) for name in dimension_names},
        relations={name: mo.relation(name) for name in dimension_names},
        kind=mo.kind,
    )
