"""The family of aggregation functions (paper §4.1).

Following Klug, the paper assumes a family of aggregation functions
``g: 2^F → D_{n+1}`` that take some subset of the n dimensions as
arguments — e.g. ``SUM_i`` sums the i'th dimension — with ``Args(g)``
returning the argument dimensions.  The function "looks up the required
data for the facts in the relevant fact-dimension relations".

Each function here carries:

* ``args`` — the argument dimension names (the paper's ``Args(g)``);
* ``distributive`` — whether the function is distributive, one of the
  three Lenz-Shoshani summarizability conditions;
* ``required_function`` — which SQL function class it belongs to, so the
  aggregation-type mechanism can check ``g ∈ min_{j∈Args(g)}
  (Aggtype(⊥_{D_j}))``;
* ``combine`` — for distributive functions, how partial results merge
  (used by the pre-aggregation engine; e.g. COUNT partials combine by
  summing).

Measures are read from the fact-dimension relations: the numeric value
of a fact in a dimension is the surrogate of a ⊥-category value the fact
is directly related to (the model treats measures as dimension values —
its symmetric treatment of dimensions and measures).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.aggtypes import AggregationType, SQLFunction, min_aggtype
from repro.core.errors import AggregationTypeError, AlgebraError
from repro.core.mo import MultidimensionalObject
from repro.core.values import Fact

__all__ = [
    "AggregationFunction",
    "SetCount",
    "CountDim",
    "Sum",
    "Avg",
    "Min",
    "Max",
    "Median",
    "SumProduct",
    "measures_of",
    "has_batch_kernel",
]


def measures_of(mo: MultidimensionalObject, dimension_name: str,
                fact: Fact) -> List[float]:
    """The numeric measures of ``fact`` in the named dimension.

    Every directly related value whose surrogate is numeric contributes;
    the ⊤ value (the "unknown" marker) contributes nothing.  A fact may
    contribute several numbers in a many-to-many dimension.
    """
    relation = mo.relation(dimension_name)
    out: List[float] = []
    for value in relation.values_of(fact):
        if value.is_top:
            continue
        sid = value.sid
        if isinstance(sid, bool) or not isinstance(sid, (int, float)):
            raise AlgebraError(
                f"value {value!r} in dimension {dimension_name!r} has a "
                f"non-numeric surrogate; cannot use it as a measure"
            )
        out.append(float(sid))
    return out


class AggregationFunction:
    """Base class: an aggregation function ``g : 2^F → D_{n+1}``.

    Subclasses set :attr:`args`, :attr:`distributive`, and
    :attr:`required_function`, and implement :meth:`apply`.
    """

    #: the paper's ``Args(g)``: argument dimension names.
    args: Tuple[str, ...] = ()
    #: whether the function is distributive (summarizability condition).
    distributive: bool = True
    #: the SQL function class, checked against aggregation types.
    required_function: SQLFunction = SQLFunction.COUNT

    @property
    def name(self) -> str:
        """Display name, e.g. ``SUM(Age)`` or ``set-count``."""
        base = type(self).__name__
        return f"{base}({', '.join(self.args)})" if self.args else base

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> object:
        """Evaluate the function on a group of facts of ``mo``."""
        raise NotImplementedError

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]
                    ) -> Optional[Dict[int, object]]:
        """Batch kernel: evaluate the function for *every* group at once.

        ``keys`` is a row-aligned sequence of composed group keys (one
        row per fact × characterization, in fact-id order) and
        ``measures`` maps each dimension in :attr:`args` to a
        row-aligned measure summary with ``counts``, ``sums``, ``mins``
        and ``maxs`` sequences (one entry per row — the fact's measure
        count and its measure sum/min/max in that dimension; see
        :class:`repro.engine.columnar.MeasureRows`).

        Returns a dict with exactly one entry per distinct key.  The
        base implementation returns ``None``, meaning "no kernel": the
        caller must fall back to per-group :meth:`apply`.  Subclasses
        that override this MUST also override :meth:`apply` with
        matching semantics (the object path is the byte-identity
        oracle); ``tools/lint_invariants.py`` enforces the pairing.
        """
        return None

    def combine(self, partials: Sequence[object]) -> object:
        """Merge partial results of disjoint sub-groups (distributive
        functions only)."""
        raise AlgebraError(
            f"{self.name} is not distributive; partial results cannot be "
            f"combined"
        )

    def check_applicable(self, mo: MultidimensionalObject,
                         strict: bool = True) -> bool:
        """The paper's applicability condition
        ``g ∈ min_{j ∈ Args(g)}(Aggtype(⊥_{D_j}))``.

        Returns True when applicable.  When not: raises
        :class:`AggregationTypeError` in strict mode (the "prevent"
        option of §3.1), returns False otherwise (caller may warn — the
        "warn" option).
        """
        bottom_types = [
            mo.dimension(d).dtype.bottom.aggtype for d in self.args
        ]
        floor = min_aggtype(bottom_types)
        if floor.permits(self.required_function):
            return True
        if strict:
            raise AggregationTypeError(
                f"{self.name} requires {self.required_function.value}, but the "
                f"argument data has aggregation type {floor.symbol} which only "
                f"permits {sorted(f.value for f in floor.allowed_functions)}"
            )
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def has_batch_kernel(function: AggregationFunction) -> bool:
    """Whether ``function`` carries a real batch kernel (overrides
    :meth:`AggregationFunction.batch_apply`).  The columnar layer and
    the plan analyzer use this to predict kernel vs object-path
    evaluation without running anything."""
    return type(function).batch_apply is not AggregationFunction.batch_apply


class SetCount(AggregationFunction):
    """The paper's *set-count*: the number of members in a set of facts
    (Example 12).  Takes no argument dimension, so it is applicable to
    any MO — counting is always meaningful."""

    args = ()
    distributive = True
    required_function = SQLFunction.COUNT

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> int:
        return sum(1 for _ in group)

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]) -> Dict[int, object]:
        """Group sizes in one C-speed pass (``Counter`` over the key
        column).  Exact: counting is order-insensitive."""
        return dict(Counter(keys))

    def combine(self, partials: Sequence[object]) -> int:
        """Counts of *disjoint* groups combine by summation."""
        return sum(int(p) for p in partials)  # type: ignore[arg-type]


class CountDim(AggregationFunction):
    """``COUNT_i``: the number of measures of the group in dimension i
    (counts fact-value pairs, so a many-to-many fact counts once per
    related value)."""

    def __init__(self, dimension_name: str) -> None:
        self.args = (dimension_name,)

    distributive = True
    required_function = SQLFunction.COUNT

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> int:
        return sum(len(measures_of(mo, self.args[0], f)) for f in group)

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]) -> Dict[int, object]:
        """Sums per-fact measure counts per key.  Exact: integer sums
        are order-insensitive."""
        rows = measures[self.args[0]]
        out: Dict[int, object] = {}
        get = out.get
        for key, count in zip(keys, rows.counts):
            out[key] = get(key, 0) + count
        return out

    def combine(self, partials: Sequence[object]) -> int:
        return sum(int(p) for p in partials)  # type: ignore[arg-type]


class Sum(AggregationFunction):
    """``SUM_i``: sums the i'th dimension's measures over the group."""

    def __init__(self, dimension_name: str) -> None:
        self.args = (dimension_name,)

    distributive = True
    required_function = SQLFunction.SUM

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> float:
        return sum(
            m for f in group for m in measures_of(mo, self.args[0], f)
        )

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]) -> Dict[int, object]:
        """Sums per-fact measure subtotals per key.  The kernel adds in
        fact-id order while :meth:`apply` adds in set-iteration order —
        identical for integral measures, potentially an ULP apart for
        arbitrary floats (see docs/PERFORMANCE.md)."""
        rows = measures[self.args[0]]
        out: Dict[int, object] = {}
        get = out.get
        for key, subtotal in zip(keys, rows.sums):
            out[key] = get(key, 0.0) + subtotal
        return out

    def combine(self, partials: Sequence[object]) -> float:
        return sum(float(p) for p in partials)  # type: ignore[arg-type]


class Avg(AggregationFunction):
    """``AVG_i``: the mean of the i'th dimension's measures.

    Not distributive — averages of averages are wrong — so results of
    AVG can never seed further summarization (the propagation rule will
    mark them ``c``).
    """

    def __init__(self, dimension_name: str) -> None:
        self.args = (dimension_name,)

    distributive = False
    required_function = SQLFunction.AVG

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> float:
        measures = [
            m for f in group for m in measures_of(mo, self.args[0], f)
        ]
        if not measures:
            return math.nan
        return sum(measures) / len(measures)

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]) -> Dict[int, object]:
        """Mean via per-key (sum, count) accumulators; ``nan`` for keys
        whose facts carry no measures, matching :meth:`apply`.  AVG
        stays non-distributive *across* materializations — the kernel
        only fuses the single full scan it is given."""
        rows = measures[self.args[0]]
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        sget, cget = sums.get, counts.get
        for key, count, subtotal in zip(keys, rows.counts, rows.sums):
            counts[key] = cget(key, 0) + count
            sums[key] = sget(key, 0.0) + subtotal
        return {
            key: (sums[key] / count if count else math.nan)
            for key, count in counts.items()
        }


class Min(AggregationFunction):
    """``MIN_i``: the minimum of the i'th dimension's measures."""

    def __init__(self, dimension_name: str) -> None:
        self.args = (dimension_name,)

    distributive = True
    required_function = SQLFunction.MIN

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> float:
        measures = [
            m for f in group for m in measures_of(mo, self.args[0], f)
        ]
        if not measures:
            return math.nan
        return min(measures)

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]) -> Dict[int, object]:
        """Per-key minimum of per-fact minima; ``nan`` for keys with no
        measures (a ``None`` placeholder until a measure shows up).
        Exact: min is order-insensitive."""
        rows = measures[self.args[0]]
        mins: Dict[int, Optional[float]] = {}
        get = mins.get
        for key, count, low in zip(keys, rows.counts, rows.mins):
            if count:
                current = get(key)
                if current is None or low < current:
                    mins[key] = low
            else:
                mins.setdefault(key, None)
        return {key: (math.nan if value is None else value)
                for key, value in mins.items()}

    def combine(self, partials: Sequence[object]) -> float:
        return min(float(p) for p in partials)  # type: ignore[arg-type]


class SumProduct(AggregationFunction):
    """``SUMPRODUCT_ij``: sums, over the group, the product of a fact's
    measures in two dimensions — the paper's two-argument function
    family (``SUM_ij`` "sums the i'th and j'th dimensions"), and the
    natural revenue measure of the introduction's retail example
    (amount × price per purchase).

    Distributive (per-fact products sum across disjoint groups).  A
    fact with several measures in either dimension contributes the
    product of the sums of its measures, the bridge-table convention.
    """

    def __init__(self, first_dimension: str, second_dimension: str) -> None:
        self.args = (first_dimension, second_dimension)

    distributive = True
    required_function = SQLFunction.SUM

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> float:
        total = 0.0
        for fact in group:
            a = sum(measures_of(mo, self.args[0], fact))
            b = sum(measures_of(mo, self.args[1], fact))
            total += a * b
        return total

    def combine(self, partials: Sequence[object]) -> float:
        return sum(float(p) for p in partials)  # type: ignore[arg-type]


class Median(AggregationFunction):
    """``MEDIAN_i``: the median of the i'th dimension's measures.

    A *holistic* function: like AVG it is not distributive, so medians
    can never be combined from partials and median results always get
    aggregation type ``c``.  Included to exercise the propagation rule
    beyond the SQL five; its applicability class is that of AVG
    (ordinal data suffices).
    """

    def __init__(self, dimension_name: str) -> None:
        self.args = (dimension_name,)

    distributive = False
    required_function = SQLFunction.AVG

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> float:
        measures = sorted(
            m for f in group for m in measures_of(mo, self.args[0], f)
        )
        if not measures:
            return math.nan
        mid = len(measures) // 2
        if len(measures) % 2:
            return measures[mid]
        return (measures[mid - 1] + measures[mid]) / 2.0


class Max(AggregationFunction):
    """``MAX_i``: the maximum of the i'th dimension's measures."""

    def __init__(self, dimension_name: str) -> None:
        self.args = (dimension_name,)

    distributive = True
    required_function = SQLFunction.MAX

    def apply(self, group: Iterable[Fact],
              mo: MultidimensionalObject) -> float:
        measures = [
            m for f in group for m in measures_of(mo, self.args[0], f)
        ]
        if not measures:
            return math.nan
        return max(measures)

    def batch_apply(self, keys: Sequence[int],
                    measures: Mapping[str, object]) -> Dict[int, object]:
        """Per-key maximum of per-fact maxima; ``nan`` for keys with no
        measures.  Exact: max is order-insensitive."""
        rows = measures[self.args[0]]
        maxs: Dict[int, Optional[float]] = {}
        get = maxs.get
        for key, count, high in zip(keys, rows.counts, rows.maxs):
            if count:
                current = get(key)
                if current is None or high > current:
                    maxs[key] = high
            else:
                maxs.setdefault(key, None)
        return {key: (math.nan if value is None else value)
                for key, value in maxs.items()}

    def combine(self, partials: Sequence[object]) -> float:
        return max(float(p) for p in partials)  # type: ignore[arg-type]
