"""Derived operators (paper §4.1, closing paragraph).

"Other common OLAP and relational operators, such as value-based join,
duplicate removal, SQL-like aggregation, star-join, drill-down, and
roll-up can easily be defined in terms of the fundamental operators."
This module provides those definitions — each body is a composition of
the seven fundamental operators (plus plain result formatting for the
SQL-like view).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.aggregate import aggregate
from repro.algebra.functions import AggregationFunction, SetCount
from repro.algebra.join import JoinPredicate, identity_join
from repro.algebra.predicates import (
    Predicate,
    SelectionContext,
    characterized_by,
    conjunction,
)
from repro.algebra.projection import project
from repro.algebra.rename import rename
from repro.algebra.selection import select
from repro.core.errors import SchemaError
from repro.core.helpers import ResultSpec, make_result_spec
from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue

__all__ = [
    "duplicate_removal",
    "sql_aggregation",
    "value_based_join",
    "star_join",
    "roll_up",
    "drill_down",
]


def duplicate_removal(mo: MultidimensionalObject) -> MultidimensionalObject:
    """Collapse facts sharing their full combination of base values.

    "Duplicates" in the model are distinct facts characterized by the
    same combination of dimension values (facts have identity, so π
    never merges them).  This operator partitions the facts by their
    exact base-pair signature — at whatever granularity each fact is
    recorded, so imprecise facts collapse only with equally imprecise
    ones — and replaces each class with a set-fact, the same fact shape
    aggregate formation produces.  The dimensions are unchanged.
    """
    signatures: Dict[tuple, list] = {}
    for fact in mo.facts:
        signature = tuple(
            frozenset(mo.relation(name).values_of(fact))
            for name in mo.dimension_names
        )
        signatures.setdefault(signature, []).append(fact)
    set_fact_type = f"Set-of-{mo.schema.fact_type}"
    from repro.core.factdim import FactDimensionRelation
    from repro.core.schema import FactSchema
    from repro.core.values import Fact

    relations = {
        name: FactDimensionRelation(name) for name in mo.dimension_names
    }
    facts = set()
    for signature, members in signatures.items():
        set_fact = Fact.group(members, ftype=set_fact_type)
        facts.add(set_fact)
        for name, values in zip(mo.dimension_names, signature):
            for value in values:
                relations[name].add(set_fact, value)
    schema = FactSchema(
        set_fact_type,
        [mo.schema.dimension_type(name) for name in mo.dimension_names])
    return MultidimensionalObject(
        schema=schema,
        facts=facts,
        dimensions={n: mo.dimension(n) for n in mo.dimension_names},
        relations=relations,
        kind=mo.kind,
    )


def sql_aggregation(
    mo: MultidimensionalObject,
    function: AggregationFunction,
    grouping: Dict[str, str],
    strict_types: bool = True,
) -> List[Dict[str, object]]:
    """A SQL ``GROUP BY`` view of aggregate formation: one row per
    *value combination* with a non-empty group.

    Note that α itself merges combinations that happen to select the
    same set of facts (its facts are the groups); the SQL view keeps
    them apart, evaluating ``function`` once per combination — the
    behaviour of ``GROUP BY`` over a bridge table.
    """
    if strict_types:
        function.check_applicable(mo, strict=True)
    index = mo.rollup_index()
    per_dim: List[Dict] = []
    names = sorted(grouping)
    for name in names:
        value_map = {
            value: facts
            for value, facts in index.characterization_map(
                name, grouping[name]).items()
            if facts
        }
        per_dim.append(value_map)
    rows: List[Dict[str, object]] = []

    def expand(i: int, row: Dict[str, object], facts: Optional[set]) -> None:
        if i == len(names):
            group = facts if facts is not None else set(mo.facts)
            if group:
                rows.append({**row, function.name: function.apply(group, mo)})
            return
        for value, value_facts in per_dim[i].items():
            joined = set(value_facts) if facts is None else facts & value_facts
            if not joined:
                continue
            expand(i + 1, {**row, names[i]: value.sid}, joined)

    expand(0, {}, None)
    rows.sort(key=lambda r: tuple(repr(r[k]) for k in names))
    return rows


def value_based_join(
    m1: MultidimensionalObject,
    m2: MultidimensionalObject,
    on: Sequence[Tuple[str, str]],
    suffixes: Tuple[str, str] = ("_1", "_2"),
) -> MultidimensionalObject:
    """Join two MOs on equality of dimension values.

    ``on`` lists pairs ``(dimension of m1, dimension of m2)``; facts are
    paired when, for each pair, they are characterized by a common value
    (same surrogate).  Defined as ρ (to disjoin names), ⋈[true] (the
    Cartesian product), then σ with the value-equality predicate — the
    standard relational decomposition of an equi-join.
    """
    shared = set(m1.dimension_names) & set(m2.dimension_names)
    map1 = {n: f"{n}{suffixes[0]}" for n in m1.dimension_names if n in shared}
    map2 = {n: f"{n}{suffixes[1]}" for n in m2.dimension_names if n in shared}
    r1 = rename(m1, dimension_map=map1) if map1 else m1
    r2 = rename(m2, dimension_map=map2) if map2 else m2
    producted = identity_join(r1, r2, JoinPredicate.TRUE)

    conditions: List[Predicate] = []
    for d1, d2 in on:
        n1 = map1.get(d1, d1)
        n2 = map2.get(d2, d2)
        if n1 not in producted.schema or n2 not in producted.schema:
            raise SchemaError(f"join dimensions {d1!r}/{d2!r} not found")
        conditions.append(_values_match(n1, n2))
    return select(producted, conjunction(*conditions))


def _values_match(dim1: str, dim2: str) -> Predicate:
    def test(values: Dict[str, DimensionValue],
             ctx: SelectionContext) -> bool:
        v1, v2 = values[dim1], values[dim2]
        if v1.is_top or v2.is_top or v1.sid != v2.sid:
            return False
        # equality must hold between the facts' recorded (base) values,
        # not between shared ancestors every fact rolls up into
        return (v1 in ctx.mo.relation(dim1).values_of(ctx.fact)
                and v2 in ctx.mo.relation(dim2).values_of(ctx.fact))

    return Predicate(dims=(dim1, dim2), test=test,
                     description=f"{dim1} = {dim2}")


def star_join(
    mo: MultidimensionalObject,
    constraints: Dict[str, DimensionValue],
    keep: Optional[Sequence[str]] = None,
) -> MultidimensionalObject:
    """The OLAP star-join: dice by several dimension constraints at
    once, then keep a subset of dimensions.  Defined as σ of the
    conjunction of characterizations followed by π."""
    predicates = [
        characterized_by(name, value) for name, value in constraints.items()
    ]
    diced = select(mo, conjunction(*predicates)) if predicates else mo
    return project(diced, list(keep)) if keep else diced


def roll_up(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
    function: Optional[AggregationFunction] = None,
    result: Optional[ResultSpec] = None,
    strict_types: bool = True,
) -> MultidimensionalObject:
    """Roll the named dimension up to a (coarser) category, aggregating
    with ``function`` (default set-count); other dimensions are grouped
    trivially (⊤)."""
    dtype = mo.dimension(dimension_name).dtype
    if category_name not in dtype:
        raise SchemaError(
            f"dimension {dimension_name!r} has no category {category_name!r}"
        )
    function = function or SetCount()
    result = result or make_result_spec()
    return aggregate(mo, function, {dimension_name: category_name}, result,
                     strict_types=strict_types)


def drill_down(
    base: MultidimensionalObject,
    dimension_name: str,
    current_category: str,
    function: Optional[AggregationFunction] = None,
    result: Optional[ResultSpec] = None,
    strict_types: bool = True,
) -> MultidimensionalObject:
    """Drill down one level from ``current_category``: re-aggregate the
    *base* MO at the next-finer category of the dimension.

    Drill-down needs the base data (aggregates cannot be disaggregated),
    which is why the derived operator takes the base MO — the paper's
    model always keeps facts, so the base is at hand.
    """
    dtype = base.dimension(dimension_name).dtype
    finer = dtype.succ(current_category)
    if not finer:
        raise SchemaError(
            f"{current_category!r} is already the finest category of "
            f"{dimension_name!r}"
        )
    # with multiple hierarchies, prefer the lexicographically first path
    target = sorted(finer)[0]
    return roll_up(base, dimension_name, target, function=function,
                   result=result, strict_types=strict_types)
