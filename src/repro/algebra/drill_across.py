"""Drill-across: combining aggregates from several MOs of a family.

The paper introduces MO *families* whose shared subdimensions "can be
used to join data from separate MOs".  Drill-across is the classical
OLAP realization: aggregate each MO at a grouping level of the shared
dimension and align the results by value, yielding one row per shared
value with one measure column per MO (e.g. patients per region from a
clinical MO next to purchases per region from a retail MO).

Values are matched by surrogate — the model's surrogates are globally
unique, so matching sids denote the same real-world value; the shared-
subdimension check of :class:`repro.core.mo.MOFamily` verifies the
dimensions actually agree before trusting the match.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro._errors import AlgebraError, SchemaError
from repro.algebra.functions import AggregationFunction, SetCount
from repro.core.mo import MOFamily, MultidimensionalObject

__all__ = ["drill_across", "drill_across_family"]


def _grouped_results(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
    function: AggregationFunction,
) -> Dict[Hashable, object]:
    dimension = mo.dimension(dimension_name)
    if category_name not in dimension.dtype:
        raise SchemaError(
            f"dimension {dimension_name!r} has no category "
            f"{category_name!r}"
        )
    # one closure-table lookup per value via the MO's rollup index,
    # instead of one hierarchy walk per value
    char_map = mo.rollup_index().characterization_map(
        dimension_name, category_name)
    out: Dict[Hashable, object] = {}
    for value, facts in char_map.items():
        if facts:
            out[value.sid] = function.apply(facts, mo)
    return out


def drill_across(
    mos: Sequence[Tuple[str, MultidimensionalObject,
                        Optional[AggregationFunction]]],
    dimension_name: str,
    category_name: str,
) -> List[Dict[str, object]]:
    """Aggregate each MO at the shared grouping level and align rows.

    ``mos`` lists ``(label, mo, function)`` triples (function defaults
    to set-count).  Every MO must have the shared dimension.  The result
    has one row per shared value that any MO populates, with a column
    per label (``None`` where an MO has no facts there) — the join is
    an outer one, as drill-across conventionally is.
    """
    if not mos:
        raise AlgebraError("drill_across needs at least one MO")
    per_mo: List[Tuple[str, Dict[Hashable, object]]] = []
    labels_of: Dict[Hashable, str] = {}
    for label, mo, function in mos:
        if dimension_name not in mo.schema:
            raise SchemaError(
                f"MO {label!r} lacks the shared dimension "
                f"{dimension_name!r}"
            )
        results = _grouped_results(mo, dimension_name, category_name,
                                   function or SetCount())
        per_mo.append((label, results))
        for value in mo.dimension(dimension_name).category(
                category_name).members():
            labels_of.setdefault(value.sid, value.label or str(value.sid))
    sids = sorted({sid for _, results in per_mo for sid in results},
                  key=repr)
    rows: List[Dict[str, object]] = []
    for sid in sids:
        row: Dict[str, object] = {
            dimension_name: sid,
            "label": labels_of.get(sid, str(sid)),
        }
        for label, results in per_mo:
            row[label] = results.get(sid)
        rows.append(row)
    return rows


def drill_across_family(
    family: MOFamily,
    dimension_name: str,
    category_name: str,
    functions: Optional[Dict[str, AggregationFunction]] = None,
    verify_shared: bool = True,
) -> List[Dict[str, object]]:
    """Drill across every member of an MO family that has the shared
    dimension.

    With ``verify_shared`` (default), each pair of participating
    members must pass the family's subdimension-sharing check — the
    guard against accidentally joining same-named but unrelated
    dimensions.
    """
    functions = functions or {}
    participating = [
        name for name in family.names()
        if dimension_name in family.member(name).schema
    ]
    if not participating:
        raise AlgebraError(
            f"no family member has dimension {dimension_name!r}"
        )
    if verify_shared:
        for first in participating:
            for second in participating:
                if first < second and not family.is_subdimension_shared(
                        first, second, dimension_name):
                    raise AlgebraError(
                        f"members {first!r} and {second!r} do not share "
                        f"the {dimension_name!r} dimension (value-level "
                        f"mismatch)"
                    )
    return drill_across(
        [(name, family.member(name), functions.get(name))
         for name in participating],
        dimension_name, category_name,
    )
