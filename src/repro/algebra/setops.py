"""Union and difference on MOs (paper §4.1 and §4.2).

**Union**: given two n-dimensional MOs with common schemas, take the set
union of the facts and of the fact-dimension relations, and combine the
dimensions with ``∪_D``.  Temporal rule (§4.2): chronon sets of data
present in both operands are unioned; otherwise the original time is
kept — which the underlying coalescing containers do automatically.

**Difference**: take the set difference of the facts; keep the first
operand's dimensions (taking the difference of dimensions "does not make
sense"); restrict the fact-dimension relations to the surviving facts.
Temporal rule (§4.2): the time of a pair in the first MO is *cut* by the
time the same pair has in the second (``T1 \\ T2``), only pairs with
non-empty chronon sets are retained, and the surviving facts are those
participating in **all** resulting relations during a non-empty chronon
set.  For snapshot MOs the temporal rule degenerates to the set rule.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.errors import AlgebraError
from repro.core.factdim import FactDimensionRelation
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import Fact

__all__ = ["union", "difference", "union_schema", "difference_schema"]


def _common_schema(s1: FactSchema, s2: FactSchema, op: str) -> FactSchema:
    if s1 != s2:
        raise AlgebraError(
            f"{op} requires common schemas; got {s1!r} vs {s2!r}"
        )
    return s1


def union_schema(s1: FactSchema, s2: FactSchema) -> FactSchema:
    """∪'s schema-inference hook: the output schema of ``M1 ∪ M2``,
    raising the same :class:`AlgebraError` the runtime operator would
    for unequal operand schemas.  (The operand temporal-kind check needs
    instances and stays with the runtime operator; the static plan
    typechecker tracks kinds separately.)"""
    return _common_schema(s1, s2, "union")


def difference_schema(s1: FactSchema, s2: FactSchema) -> FactSchema:
    """\\'s schema-inference hook, symmetric to :func:`union_schema`."""
    return _common_schema(s1, s2, "difference")


def _require_common_schema(m1: MultidimensionalObject,
                           m2: MultidimensionalObject,
                           op: str) -> None:
    _common_schema(m1.schema, m2.schema, op)
    if m1.kind != m2.kind:
        raise AlgebraError(
            f"{op} requires operands of the same temporal kind; got "
            f"{m1.kind.value} vs {m2.kind.value}"
        )


def union(m1: MultidimensionalObject,
          m2: MultidimensionalObject) -> MultidimensionalObject:
    """``M1 ∪ M2``."""
    _require_common_schema(m1, m2, "union")
    dimensions = {
        name: m1.dimension(name).union(m2.dimension(name))
        for name in m1.dimension_names
    }
    relations = {
        name: m1.relation(name).union(m2.relation(name))
        for name in m1.dimension_names
    }
    return MultidimensionalObject(
        schema=m1.schema,
        facts=m1.facts | m2.facts,
        dimensions=dimensions,
        relations=relations,
        kind=m1.kind,
    )


def difference(m1: MultidimensionalObject,
               m2: MultidimensionalObject) -> MultidimensionalObject:
    """``M1 \\ M2``."""
    _require_common_schema(m1, m2, "difference")
    if m1.kind is TimeKind.SNAPSHOT:
        facts = m1.facts - m2.facts
        relations = {
            name: m1.relation(name).restricted_to_facts(facts)
            for name in m1.dimension_names
        }
    else:
        relations = {}
        for name in m1.dimension_names:
            r1, r2 = m1.relation(name), m2.relation(name)
            result = FactDimensionRelation(name)
            for fact, value, time, prob in r1.annotated_pairs():
                cut = time.difference(r2.pair_time(fact, value))
                if not cut.is_empty():
                    result.add(fact, value, time=cut, prob=prob)
            relations[name] = result
        facts = _facts_in_all_relations(m1, relations)
        relations = {
            name: relation.restricted_to_facts(facts)
            for name, relation in relations.items()
        }
    return MultidimensionalObject(
        schema=m1.schema,
        facts=facts,
        dimensions={name: m1.dimension(name) for name in m1.dimension_names},
        relations=relations,
        kind=m1.kind,
    )


def _facts_in_all_relations(
    m1: MultidimensionalObject,
    relations: Dict[str, FactDimensionRelation],
) -> Set[Fact]:
    """``F' = ∩_i {f | ∃(f, e_i) ∈_{T'≠∅} R'_i}`` — the temporal
    difference's surviving facts."""
    surviving = set(m1.facts)
    for relation in relations.values():
        surviving &= relation.facts()
    return surviving
