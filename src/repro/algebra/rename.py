"""The rename operator ρ (paper §4.1).

``ρ[S'](M)`` returns the contents of M under a new schema S' with the
same structure as the old one.  Rename exists so that dimensions with
the same name — e.g. resulting from a "self-join" — can be
distinguished.

The implementation takes the new fact type and/or a mapping of dimension
names, and rebuilds the renamed dimensions (their ⊤ category and ⊤ value
embed the dimension name, so a faithful rename re-creates them and remaps
any ``(f, ⊤)`` pairs in the fact-dimension relations).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import SchemaError
from repro.core.factdim import FactDimensionRelation
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import Fact

__all__ = ["rename", "rename_dimension", "rename_dimension_type",
           "rename_schema"]


def rename_dimension_type(dtype: DimensionType,
                          new_name: str) -> DimensionType:
    """The intension-level rename: the same lattice under a new
    dimension name (fresh ⊤ category type, declarations preserved)."""
    ctypes = []
    for ctype in dtype.category_types():
        if ctype.is_top:
            ctypes.append(CategoryType.top(new_name))
        else:
            ctypes.append(ctype)
    # reconstruct direct category-type edges, excluding implicit ⊤ links
    edges = []
    for ctype in dtype.category_types():
        for parent in dtype.pred(ctype.name):
            if parent == dtype.top_name:
                continue
            edges.append((ctype.name, parent))
    return DimensionType(
        new_name, ctypes, edges,
        declared_strict=dtype.declared_strict,
        declared_partitioning=dtype.declared_partitioning,
    )


def rename_schema(
    schema: FactSchema,
    new_fact_type: Optional[str] = None,
    dimension_map: Optional[Dict[str, str]] = None,
) -> FactSchema:
    """ρ's schema-inference hook: the output schema of ``ρ``, raising
    the same :class:`SchemaError` the runtime operator would (unknown
    old names, colliding new names).  Used by the static plan
    typechecker (:mod:`repro.analyze`)."""
    dimension_map = dict(dimension_map or {})
    for old in dimension_map:
        if old not in schema:
            raise SchemaError(f"cannot rename unknown dimension {old!r}")
    new_names = [dimension_map.get(n, n) for n in schema.dimension_names]
    if len(set(new_names)) != len(new_names):
        raise SchemaError(f"renaming produces duplicate names {new_names!r}")
    dtypes = []
    for old_name in schema.dimension_names:
        new_name = dimension_map.get(old_name, old_name)
        dtype = schema.dimension_type(old_name)
        dtypes.append(dtype if new_name == old_name
                      else rename_dimension_type(dtype, new_name))
    return FactSchema(new_fact_type or schema.fact_type, dtypes)


def rename_dimension(dimension: Dimension, new_name: str) -> Dimension:
    """Rebuild a dimension under a new name (same categories, order,
    representations; fresh ⊤)."""
    dtype = rename_dimension_type(dimension.dtype, new_name)
    result = Dimension(dtype)
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        for value, time in category.items():
            result.add_value(category.name, value, time)
    for child, parent, time, prob in dimension.order.edges():
        result.add_edge(child, parent, time=time, prob=prob)
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        for rep_name, rep in dimension.representations_of(category.name).items():
            target = result.add_representation(category.name, rep_name)
            for value, rep_value, time in rep.entries():
                target.assign(value, rep_value, time)
    return result


def rename(
    mo: MultidimensionalObject,
    new_fact_type: Optional[str] = None,
    dimension_map: Optional[Dict[str, str]] = None,
) -> MultidimensionalObject:
    """Apply ``ρ`` to ``mo``.

    ``dimension_map`` maps old dimension names to new ones (unmentioned
    dimensions keep their names); ``new_fact_type`` renames the fact
    type (and therefore re-labels every fact).  The result's schema is
    isomorphic to the input's, as the operator requires.
    """
    dimension_map = dict(dimension_map or {})
    rename_schema(mo.schema, new_fact_type, dimension_map)

    fact_type = new_fact_type or mo.schema.fact_type
    fact_map: Dict[Fact, Fact] = {}
    for fact in mo.facts:
        if new_fact_type is None:
            fact_map[fact] = fact
        else:
            fact_map[fact] = Fact(fid=fact.fid, ftype=fact_type)

    dimensions: Dict[str, Dimension] = {}
    relations: Dict[str, FactDimensionRelation] = {}
    dtypes = []
    for old_name in mo.dimension_names:
        new_name = dimension_map.get(old_name, old_name)
        old_dim = mo.dimension(old_name)
        if new_name == old_name and new_fact_type is None:
            dimensions[new_name] = old_dim
            relations[new_name] = mo.relation(old_name)
            dtypes.append(old_dim.dtype)
            continue
        new_dim = (old_dim if new_name == old_name
                   else rename_dimension(old_dim, new_name))
        relation = FactDimensionRelation(new_name)
        old_top = old_dim.top_value
        for fact, value, time, prob in mo.relation(old_name).annotated_pairs():
            mapped_value = new_dim.top_value if value == old_top else value
            relation.add(fact_map[fact], mapped_value, time=time, prob=prob)
        dimensions[new_name] = new_dim
        relations[new_name] = relation
        dtypes.append(new_dim.dtype)

    schema = FactSchema(fact_type, dtypes)
    return MultidimensionalObject(
        schema=schema,
        facts=set(fact_map.values()),
        dimensions=dimensions,
        relations=relations,
        kind=mo.kind,
    )
