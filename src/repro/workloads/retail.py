"""The retail workload of the paper's introduction.

"In a retail business, products are sold to customers at certain times
in certain amounts at certain prices.  A typical fact would be a
purchase, with the amount and price as the measures, and the customer
purchasing the product, the product being purchased, and the time of
purchase as the dimensions."

This generator builds that MO — treating Amount and Price as dimensions
too, per the model's symmetric view — with the usual retail hierarchies
(Product < Category < Department; Customer < City < Region;
Day < Month < Year).  It backs the second-domain example and the
cross-domain benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.helpers import make_numeric_dimension
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact, SurrogateSource

__all__ = ["RetailConfig", "RetailWorkload", "generate_retail"]


@dataclass(frozen=True)
class RetailConfig:
    """Parameters of a synthetic retail workload."""

    n_purchases: int = 200
    n_departments: int = 3
    categories_per_department: int = 4
    products_per_category: int = 10
    n_regions: int = 2
    cities_per_region: int = 3
    customers_per_city: int = 5
    n_days: int = 90
    max_amount: int = 10
    max_price: int = 500
    seed: int = 0


@dataclass
class RetailWorkload:
    """The generated MO plus value inventories for the benchmarks."""

    mo: MultidimensionalObject
    products: List[DimensionValue] = field(default_factory=list)
    categories: List[DimensionValue] = field(default_factory=list)
    departments: List[DimensionValue] = field(default_factory=list)
    customers: List[DimensionValue] = field(default_factory=list)
    cities: List[DimensionValue] = field(default_factory=list)
    days: List[DimensionValue] = field(default_factory=list)
    purchases: List[Fact] = field(default_factory=list)


def _linear(name: str, levels: List[str]) -> Dimension:
    ctypes = [
        CategoryType(level, AggregationType.CONSTANT, is_bottom=(i == 0))
        for i, level in enumerate(levels)
    ]
    edges = [(levels[i], levels[i + 1]) for i in range(len(levels) - 1)]
    # generation links every child to exactly one parent, so the chain
    # hierarchies are strict and partitioning — declared for the
    # analyzer and the engine's static fast path
    return Dimension(DimensionType(
        name, ctypes, edges,
        declared_strict=True, declared_partitioning=True))


def generate_retail(config: RetailConfig = RetailConfig()) -> RetailWorkload:
    """Generate a retail workload (deterministic in ``config``)."""
    rng = random.Random(config.seed)
    surrogates = SurrogateSource(start=1)
    workload = RetailWorkload(mo=None)  # type: ignore[arg-type]

    product = _linear("Product", ["Product", "Category", "Department"])
    for d in range(config.n_departments):
        dept = surrogates.fresh_value(label=f"Dept{d}")
        product.add_value("Department", dept)
        workload.departments.append(dept)
        for c in range(config.categories_per_department):
            cat = surrogates.fresh_value(label=f"Cat{d}.{c}")
            product.add_value("Category", cat)
            product.add_edge(cat, dept)
            workload.categories.append(cat)
            for p in range(config.products_per_category):
                item = surrogates.fresh_value(label=f"P{d}.{c}.{p}")
                product.add_value("Product", item)
                product.add_edge(item, cat)
                workload.products.append(item)

    customer = _linear("Customer", ["Customer", "City", "Region"])
    for r in range(config.n_regions):
        region = surrogates.fresh_value(label=f"Region{r}")
        customer.add_value("Region", region)
        for c in range(config.cities_per_region):
            city = surrogates.fresh_value(label=f"City{r}.{c}")
            customer.add_value("City", city)
            customer.add_edge(city, region)
            workload.cities.append(city)
            for k in range(config.customers_per_city):
                cust = surrogates.fresh_value(label=f"Cust{r}.{c}.{k}")
                customer.add_value("Customer", cust)
                customer.add_edge(cust, city)
                workload.customers.append(cust)

    date = _linear("Date", ["Day", "Month", "Year"])
    months: Dict[Tuple[int, int], DimensionValue] = {}
    years: Dict[int, DimensionValue] = {}
    for offset in range(config.n_days):
        year, month = 1998 + offset // 360, (offset // 30) % 12 + 1
        day_value = surrogates.fresh_value(label=f"D{offset}")
        date.add_value("Day", day_value)
        workload.days.append(day_value)
        month_value = months.get((year, month))
        if month_value is None:
            month_value = surrogates.fresh_value(label=f"{year}-{month:02d}")
            date.add_value("Month", month_value)
            months[(year, month)] = month_value
            year_value = years.get(year)
            if year_value is None:
                year_value = surrogates.fresh_value(label=str(year))
                date.add_value("Year", year_value)
                years[year] = year_value
            date.add_edge(month_value, year_value)
        date.add_edge(day_value, month_value)

    amount = make_numeric_dimension(
        "Amount", range(1, config.max_amount + 1),
        aggtype=AggregationType.SUM,
        declared_strict=True, declared_partitioning=True)
    price = make_numeric_dimension(
        "Price", range(1, config.max_price + 1),
        aggtype=AggregationType.SUM,
        declared_strict=True, declared_partitioning=True)

    dimensions = {
        "Product": product,
        "Customer": customer,
        "Date": date,
        "Amount": amount,
        "Price": price,
    }
    schema = FactSchema("Purchase", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions)
    for _ in range(config.n_purchases):
        purchase = surrogates.fresh_fact(ftype="Purchase")
        mo.add_fact(purchase)
        workload.purchases.append(purchase)
        mo.relate(purchase, "Product", rng.choice(workload.products))
        mo.relate(purchase, "Customer", rng.choice(workload.customers))
        mo.relate(purchase, "Date", rng.choice(workload.days))
        mo.relate(purchase, "Amount",
                  DimensionValue(sid=rng.randint(1, config.max_amount)))
        mo.relate(purchase, "Price",
                  DimensionValue(sid=rng.randint(1, config.max_price)))
    workload.mo = mo
    return workload
