"""A seeded, scalable clinical workload generator.

Produces "Patient" MOs of any size with the statistical shape of the
paper's case study: an ICD-like diagnosis classification (5-20 children
per node, optional non-strict links, optional two-era change-over),
an Area < County < Region residence hierarchy, an additive Age
dimension, many-to-many patient-diagnosis relationships at mixed
granularity, optional validity intervals, and optional diagnosis
uncertainty.

The paper's evaluation is a two-patient example; these workloads back
the scaling and ablation benchmarks (DESIGN.md §4) that probe the
future-work question of efficient implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.casestudy.icd import IcdClassification, IcdShape, build_icd_dimension
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.helpers import Band, make_numeric_dimension
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact, SurrogateSource
from repro.temporal.chronon import NOW, day
from repro.temporal.timeset import ALWAYS, TimeSet

__all__ = ["ClinicalConfig", "ClinicalWorkload", "generate_clinical"]


@dataclass(frozen=True)
class ClinicalConfig:
    """Parameters of a synthetic clinical workload."""

    n_patients: int = 100
    diagnoses_per_patient: Tuple[int, int] = (1, 4)
    #: fraction of diagnosis links recorded imprecisely, at the
    #: Diagnosis Family level (requirement 9: mixed granularity).
    family_granularity_prob: float = 0.2
    icd: IcdShape = IcdShape()
    n_regions: int = 3
    counties_per_region: int = 3
    areas_per_county: int = 4
    #: attach validity intervals (valid-time MO) instead of ALWAYS.
    temporal: bool = False
    #: fraction of diagnosis links carrying probability < 1.
    uncertainty_prob: float = 0.0
    seed: int = 0


@dataclass
class ClinicalWorkload:
    """A generated workload: the MO plus the value inventories the
    benchmarks sweep over."""

    mo: MultidimensionalObject
    icd: IcdClassification
    areas: List[DimensionValue] = field(default_factory=list)
    counties: List[DimensionValue] = field(default_factory=list)
    regions: List[DimensionValue] = field(default_factory=list)
    patients: List[Fact] = field(default_factory=list)


def _residence_dimension(
    config: ClinicalConfig,
    surrogates: SurrogateSource,
    workload: ClinicalWorkload,
) -> Dimension:
    ctypes = [
        CategoryType("Area", AggregationType.CONSTANT, is_bottom=True),
        CategoryType("County", AggregationType.CONSTANT),
        CategoryType("Region", AggregationType.CONSTANT),
    ]
    # built below as a strict partition tree (every area in exactly one
    # county, every county in exactly one region) — declaring it lets
    # the shard-safety analyzer prove Residence rollups SAFE statically
    dimension = Dimension(DimensionType(
        "Residence", ctypes, [("Area", "County"), ("County", "Region")],
        declared_strict=True, declared_partitioning=True))
    for r in range(config.n_regions):
        region = surrogates.fresh_value(label=f"R{r}")
        dimension.add_value("Region", region)
        workload.regions.append(region)
        for c in range(config.counties_per_region):
            county = surrogates.fresh_value(label=f"C{r}.{c}")
            dimension.add_value("County", county)
            dimension.add_edge(county, region)
            workload.counties.append(county)
            for a in range(config.areas_per_county):
                area = surrogates.fresh_value(label=f"A{r}.{c}.{a}")
                dimension.add_value("Area", area)
                dimension.add_edge(area, county)
                workload.areas.append(area)
    return dimension


def _random_interval(rng: random.Random) -> TimeSet:
    start_year = rng.randint(1970, 1998)
    start = day(start_year, rng.randint(1, 12), rng.randint(1, 28))
    if rng.random() < 0.5:
        return TimeSet.interval(start, NOW)
    end_year = rng.randint(start_year, 1999)
    end = day(end_year, 12, rng.randint(1, 28))
    return TimeSet.interval(start, max(start, end))


def generate_clinical(config: ClinicalConfig = ClinicalConfig()
                      ) -> ClinicalWorkload:
    """Generate a clinical workload from a configuration.

    The result is deterministic in ``config`` (including the seed).
    """
    rng = random.Random(config.seed)
    surrogates = SurrogateSource(start=1)
    icd = build_icd_dimension(rng, config.icd, surrogates=surrogates)
    workload = ClinicalWorkload(mo=None, icd=icd)  # type: ignore[arg-type]
    residence = _residence_dimension(config, surrogates, workload)
    ages = list(range(0, 100))
    five_year = [Band(lo, lo + 5) for lo in range(0, 100, 5)]
    ten_year = [Band(lo, lo + 10) for lo in range(0, 100, 10)]
    age = make_numeric_dimension(
        "Age", ages,
        bands={"Five-year group": five_year, "Ten-year group": ten_year},
        aggtype=AggregationType.SUM,
    )
    dimensions = {
        "Diagnosis": icd.dimension,
        "Residence": residence,
        "Age": age,
    }
    schema = FactSchema("Patient", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(
        schema=schema,
        dimensions=dimensions,
        kind=TimeKind.VALID if config.temporal else TimeKind.SNAPSHOT,
    )
    age_values = {
        a: DimensionValue(sid=a, label=str(a)) for a in ages
    }
    low_levels = icd.low_levels
    families = icd.families
    for _ in range(config.n_patients):
        patient = surrogates.fresh_fact(ftype="Patient")
        mo.add_fact(patient)
        workload.patients.append(patient)
        mo.relate(patient, "Age", age_values[rng.randint(0, 99)])
        mo.relate(patient, "Residence", rng.choice(workload.areas),
                  time=_random_interval(rng) if config.temporal else ALWAYS)
        n_diagnoses = rng.randint(*config.diagnoses_per_patient)
        for _ in range(n_diagnoses):
            if rng.random() < config.family_granularity_prob:
                value = rng.choice(families)
            else:
                value = rng.choice(low_levels)
            time = _random_interval(rng) if config.temporal else ALWAYS
            if config.temporal:
                existence = icd.dimension.existence_time(value)
                time = time.intersection(existence)
                if time.is_empty():
                    time = existence
            prob = 1.0
            if config.uncertainty_prob > 0.0 and \
                    rng.random() < config.uncertainty_prob:
                prob = round(rng.uniform(0.5, 0.99), 2)
            mo.relate(patient, "Diagnosis", value, time=time, prob=prob)
    workload.mo = mo
    return workload
