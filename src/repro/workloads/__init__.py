"""Seeded synthetic workload generators: the clinical domain of the
case study at scale, and the retail domain of the paper's introduction."""

from repro.workloads.generator import (
    ClinicalConfig,
    ClinicalWorkload,
    generate_clinical,
)
from repro.workloads.retail import RetailConfig, RetailWorkload, generate_retail
from repro.workloads.wide import WideConfig, WideWorkload, generate_wide

__all__ = [
    "ClinicalConfig",
    "ClinicalWorkload",
    "generate_clinical",
    "RetailConfig",
    "RetailWorkload",
    "generate_retail",
    "WideConfig",
    "WideWorkload",
    "generate_wide",
]
