"""Wide MOs — the paper's last future-work question: "how
multidimensional models may cope with the hundreds of dimensions found
in some applications".

This generator builds MOs with an arbitrary number of simple (⊥ + ⊤)
dimensions plus a configurable handful of deep ones, so the test suite
and the wide-schema bench can probe where per-dimension costs bite:
validation, projection, selection, and aggregate formation all touch
every dimension.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact, SurrogateSource

__all__ = ["WideConfig", "WideWorkload", "generate_wide"]


@dataclass(frozen=True)
class WideConfig:
    """Parameters of a wide workload."""

    n_facts: int = 100
    #: number of simple (⊥ + ⊤) dimensions.
    n_flat_dimensions: int = 100
    #: values per flat dimension's ⊥ category.
    flat_cardinality: int = 8
    #: number of three-level (L0 < L1 < L2) dimensions.
    n_deep_dimensions: int = 2
    values_per_level: int = 6
    seed: int = 0


@dataclass
class WideWorkload:
    """The generated MO plus per-dimension value inventories."""

    mo: MultidimensionalObject
    flat_values: Dict[str, List[DimensionValue]] = field(
        default_factory=dict)
    deep_bottom_values: Dict[str, List[DimensionValue]] = field(
        default_factory=dict)


def generate_wide(config: WideConfig = WideConfig()) -> WideWorkload:
    """Generate a wide MO (deterministic in ``config``)."""
    rng = random.Random(config.seed)
    surrogates = SurrogateSource(start=1)
    workload = WideWorkload(mo=None)  # type: ignore[arg-type]
    dimensions: Dict[str, Dimension] = {}

    for i in range(config.n_flat_dimensions):
        name = f"F{i:03d}"
        dtype = DimensionType(
            name, [CategoryType(name, AggregationType.CONSTANT,
                                is_bottom=True)], [],
            declared_strict=True, declared_partitioning=True)
        dimension = Dimension(dtype)
        values = [
            surrogates.fresh_value(label=f"{name}.{j}")
            for j in range(config.flat_cardinality)
        ]
        for value in values:
            dimension.add_value(name, value)
        dimensions[name] = dimension
        workload.flat_values[name] = values

    for i in range(config.n_deep_dimensions):
        name = f"D{i}"
        levels = [f"{name}L{k}" for k in range(3)]
        ctypes = [CategoryType(level, AggregationType.CONSTANT,
                               is_bottom=(k == 0))
                  for k, level in enumerate(levels)]
        edges = [(levels[0], levels[1]), (levels[1], levels[2])]
        # every child is linked to exactly one parent below
        dimension = Dimension(DimensionType(
            name, ctypes, edges,
            declared_strict=True, declared_partitioning=True))
        level_values: List[List[DimensionValue]] = []
        for level in levels:
            values = [
                surrogates.fresh_value(label=f"{level}.{j}")
                for j in range(config.values_per_level)
            ]
            for value in values:
                dimension.add_value(level, value)
            level_values.append(values)
        for k in range(2):
            for child in level_values[k]:
                dimension.add_edge(child, rng.choice(level_values[k + 1]))
        dimensions[name] = dimension
        workload.deep_bottom_values[name] = level_values[0]

    schema = FactSchema("Wide", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions)
    for _ in range(config.n_facts):
        fact = surrogates.fresh_fact(ftype="Wide")
        mo.add_fact(fact)
        for name, values in workload.flat_values.items():
            mo.relate(fact, name, rng.choice(values))
        for name, values in workload.deep_bottom_values.items():
            mo.relate(fact, name, rng.choice(values))
    workload.mo = mo
    return workload
