"""Construction of the case study's "Patient" MO (paper Examples 1-10).

The six-dimensional MO of Example 8: fact type *Patient* with dimensions
*Diagnosis*, *DOB* (Date of Birth), *Residence*, *Name*, *SSN*, and
*Age* — "everything that characterizes the fact type is dimensional,
even attributes that would be considered measures in other models"
(Example 1).

* The Diagnosis dimension (Examples 2, 4, 6) has the three-level
  hierarchy of Table 1, the Code and Text representations, timestamped
  category membership and partial order, and optionally Example 10's
  cross-change link ``8 ≤_[01/01/80-NOW] 11``.
* The DOB dimension has the paper's two hierarchies (Figure 2): days
  roll up into weeks, or into months < quarters < years < decades.
* The Age dimension groups ages into five-year and ten-year groups and
  is additive (``Aggtype(Age) = ⊕``, Example 3); DOB is ``⊘`` and
  diagnoses are ``c``.
* The Residence dimension is the strict, partitioning Area < County <
  Region hierarchy (Example 11); its rows are synthesized (see
  :mod:`repro.casestudy.tables`).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.casestudy import tables
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.helpers import Band, make_numeric_dimension, make_simple_dimension
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import Chronon, day, parse_day, to_date
from repro.temporal.timeset import ALWAYS, TimeSet

__all__ = [
    "DEFAULT_REFERENCE",
    "patient_fact",
    "diagnosis_value",
    "diagnosis_dimension",
    "residence_dimension",
    "dob_dimension",
    "age_dimension",
    "name_dimension",
    "ssn_dimension",
    "case_study_mo",
]

#: The default "current time" used to resolve ages: 1 January 1999, the
#: paper's publication context.
DEFAULT_REFERENCE: Chronon = day(1999, 1, 1)


def patient_fact(patient_id: int) -> Fact:
    """The fact for a patient of Table 1."""
    return Fact(fid=patient_id, ftype="Patient")


def diagnosis_value(diagnosis_id: int) -> DimensionValue:
    """The dimension value for a diagnosis of Table 1 (labelled by its
    most recent code for readability)."""
    label = None
    for row in tables.DIAGNOSIS_ROWS:
        if row.id == diagnosis_id:
            label = row.code
    return DimensionValue(sid=diagnosis_id, label=label)


def _interval(valid_from: str, valid_to: str, temporal: bool) -> TimeSet:
    if not temporal:
        return ALWAYS
    return TimeSet.interval(parse_day(valid_from), parse_day(valid_to))


def diagnosis_dimension(temporal: bool = True,
                        include_example10_link: bool = False) -> Dimension:
    """The Diagnosis dimension of Examples 2 and 4.

    ``temporal=False`` collapses every annotation to ALWAYS (the basic
    model of Example 7, "leaving out the temporal aspects").
    """
    ctypes = [
        CategoryType("Low-level Diagnosis", AggregationType.CONSTANT,
                     is_bottom=True),
        CategoryType("Diagnosis Family", AggregationType.CONSTANT),
        CategoryType("Diagnosis Group", AggregationType.CONSTANT),
    ]
    edges = [
        ("Low-level Diagnosis", "Diagnosis Family"),
        ("Diagnosis Family", "Diagnosis Group"),
    ]
    # Example 6's data makes this hierarchy non-strict (diagnosis 4
    # belongs to two families) and non-partitioning (patients are
    # diagnosed at mixed granularities) — declared so, which is what
    # the static analyzer's known-real warning on the case study checks
    dimension = Dimension(DimensionType(
        "Diagnosis", ctypes, edges,
        declared_strict=False, declared_partitioning=False))
    for row in tables.DIAGNOSIS_ROWS:
        category = tables.CATEGORY_OF_DIAGNOSIS[row.id]
        time = _interval(row.valid_from, row.valid_to, temporal)
        value = diagnosis_value(row.id)
        dimension.add_value(category, value, time)
        code = dimension.add_representation(category, "Code")
        code.assign(value, row.code, time)
        text = dimension.add_representation(category, "Text")
        text.assign(value, row.text, time)
    grouping_rows = list(tables.GROUPING_ROWS)
    if include_example10_link:
        grouping_rows.append(tables.EXAMPLE_10_LINK)
    for row in grouping_rows:
        dimension.add_edge(
            diagnosis_value(row.child_id),
            diagnosis_value(row.parent_id),
            time=_interval(row.valid_from, row.valid_to, temporal),
        )
    return dimension


def residence_dimension(temporal: bool = True) -> Dimension:
    """The strict, partitioning Residence hierarchy of Example 11
    (Area < County < Region), populated from the synthesized rows."""
    ctypes = [
        CategoryType("Area", AggregationType.CONSTANT, is_bottom=True),
        CategoryType("County", AggregationType.CONSTANT),
        CategoryType("Region", AggregationType.CONSTANT),
    ]
    edges = [("Area", "County"), ("County", "Region")]
    # Example 11 presents Residence as the well-behaved counterpart:
    # every area in exactly one county, every county in one region
    dimension = Dimension(DimensionType(
        "Residence", ctypes, edges,
        declared_strict=True, declared_partitioning=True))
    name_reps: Dict[str, object] = {}
    for level in ("Area", "County", "Region"):
        name_reps[level] = dimension.add_representation(level, "Name")
    seen: Dict[int, DimensionValue] = {}
    for row in tables.AREA_ROWS:
        area = DimensionValue(sid=row.id, label=row.name)
        dimension.add_value("Area", area)
        name_reps["Area"].assign(area, row.name)
        county = seen.get(row.county_id)
        if county is None:
            county = DimensionValue(sid=row.county_id, label=row.county_name)
            dimension.add_value("County", county)
            name_reps["County"].assign(county, row.county_name)
            seen[row.county_id] = county
        region = seen.get(row.region_id)
        if region is None:
            region = DimensionValue(sid=row.region_id, label=row.region_name)
            dimension.add_value("Region", region)
            name_reps["Region"].assign(region, row.region_name)
            seen[row.region_id] = region
        dimension.add_edge(area, county)
        if not dimension.order.edge_annotations(county, region):
            dimension.add_edge(county, region)
    return dimension


def _dob_values(chronon: Chronon) -> Dict[str, DimensionValue]:
    """The Day value for a date of birth plus its ancestors in both
    hierarchies (Week; Month < Quarter < Year < Decade)."""
    date = to_date(chronon)
    iso = date.isocalendar()
    return {
        "Day": DimensionValue(sid=chronon,
                              label=date.strftime("%d/%m/%y")),
        "Week": DimensionValue(sid=("W", iso[0], iso[1]),
                               label=f"{iso[0]}-W{iso[1]:02d}"),
        "Month": DimensionValue(sid=("M", date.year, date.month),
                                label=f"{date.year}-{date.month:02d}"),
        "Quarter": DimensionValue(
            sid=("Q", date.year, (date.month - 1) // 3 + 1),
            label=f"{date.year}-Q{(date.month - 1) // 3 + 1}"),
        "Year": DimensionValue(sid=("Y", date.year), label=str(date.year)),
        "Decade": DimensionValue(sid=("D", date.year // 10 * 10),
                                 label=f"{date.year // 10 * 10}s"),
    }


def dob_dimension(dates_of_birth: Iterable[Chronon]) -> Dimension:
    """The DOB dimension with the paper's two hierarchies (Figure 2):
    Day < Week (< ⊤) and Day < Month < Quarter < Year < Decade (< ⊤)."""
    ctypes = [
        CategoryType("Day", AggregationType.AVERAGE, is_bottom=True),
        CategoryType("Week", AggregationType.CONSTANT),
        CategoryType("Month", AggregationType.CONSTANT),
        CategoryType("Quarter", AggregationType.CONSTANT),
        CategoryType("Year", AggregationType.CONSTANT),
        CategoryType("Decade", AggregationType.CONSTANT),
    ]
    edges = [
        ("Day", "Week"),
        ("Day", "Month"),
        ("Month", "Quarter"),
        ("Quarter", "Year"),
        ("Year", "Decade"),
    ]
    # calendar rollups are strict and total by construction
    dimension = Dimension(DimensionType(
        "DOB", ctypes, edges,
        declared_strict=True, declared_partitioning=True))
    chain = [("Month", "Quarter"), ("Quarter", "Year"), ("Year", "Decade")]
    for chronon in dates_of_birth:
        values = _dob_values(chronon)
        for level, value in values.items():
            if value not in dimension:
                dimension.add_value(level, value)
        if not dimension.order.edge_annotations(values["Day"], values["Week"]):
            dimension.add_edge(values["Day"], values["Week"])
        if not dimension.order.edge_annotations(values["Day"], values["Month"]):
            dimension.add_edge(values["Day"], values["Month"])
        for lower, upper in chain:
            if not dimension.order.edge_annotations(values[lower],
                                                    values[upper]):
                dimension.add_edge(values[lower], values[upper])
    return dimension


def _age_at(dob: Chronon, reference: Chronon) -> int:
    born = to_date(dob)
    now = to_date(reference)
    age = now.year - born.year
    if (now.month, now.day) < (born.month, born.day):
        age -= 1
    return age


def age_dimension(ages: Iterable[int]) -> Dimension:
    """The additive Age dimension with five-year and ten-year groups
    (Example 3 / Example 8)."""
    five_year = [Band(lo, lo + 5) for lo in range(0, 120, 5)]
    ten_year = [Band(lo, lo + 10) for lo in range(0, 120, 10)]
    return make_numeric_dimension(
        "Age", sorted(set(ages)),
        bands={"Five-year group": five_year, "Ten-year group": ten_year},
        aggtype=AggregationType.SUM,
        # the bands cover [0, 120) and ages are clamped into it
        declared_strict=True, declared_partitioning=True,
    )


def name_dimension() -> Dimension:
    """The simple Name dimension (⊥ = Name, ⊤)."""
    return make_simple_dimension(
        "Name", (row.name for row in tables.PATIENT_ROWS))


def ssn_dimension() -> Dimension:
    """The simple SSN dimension (⊥ = SSN, ⊤)."""
    return make_simple_dimension(
        "SSN", (row.ssn for row in tables.PATIENT_ROWS))


def case_study_mo(
    temporal: bool = True,
    include_example10_link: bool = False,
    reference: Chronon = DEFAULT_REFERENCE,
) -> MultidimensionalObject:
    """The six-dimensional "Patient" MO of Example 8.

    ``temporal`` selects the valid-time MO (Example 9's annotations) or
    the snapshot MO (Example 7's untimed fact-dimension relation);
    ``include_example10_link`` adds the cross-change containment of
    Example 10; ``reference`` resolves derived ages.
    """
    dob_by_patient = {
        row.id: parse_day(row.date_of_birth) for row in tables.PATIENT_ROWS
    }
    ages = {
        pid: _age_at(dob, reference) for pid, dob in dob_by_patient.items()
    }
    dimensions = {
        "Diagnosis": diagnosis_dimension(
            temporal, include_example10_link=include_example10_link),
        "DOB": dob_dimension(dob_by_patient.values()),
        "Residence": residence_dimension(temporal),
        "Name": name_dimension(),
        "SSN": ssn_dimension(),
        "Age": age_dimension(ages.values()),
    }
    schema = FactSchema("Patient", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(
        schema=schema,
        dimensions=dimensions,
        kind=TimeKind.VALID if temporal else TimeKind.SNAPSHOT,
    )
    for row in tables.PATIENT_ROWS:
        fact = patient_fact(row.id)
        mo.add_fact(fact)
        mo.relate(fact, "Name", DimensionValue(sid=row.name, label=row.name))
        mo.relate(fact, "SSN", DimensionValue(sid=row.ssn, label=row.ssn))
        dob = dob_by_patient[row.id]
        mo.relate(fact, "DOB",
                  DimensionValue(sid=dob,
                                 label=to_date(dob).strftime("%d/%m/%y")))
        mo.relate(fact, "Age",
                  DimensionValue(sid=ages[row.id], label=str(ages[row.id])))
    for row in tables.HAS_ROWS:
        mo.relate(
            patient_fact(row.patient_id),
            "Diagnosis",
            diagnosis_value(row.diagnosis_id),
            time=_interval(row.valid_from, row.valid_to, temporal),
        )
    area_labels = {row.id: row.name for row in tables.AREA_ROWS}
    for row in tables.LIVES_IN_ROWS:
        mo.relate(
            patient_fact(row.patient_id),
            "Residence",
            DimensionValue(sid=row.area_id, label=area_labels[row.area_id]),
            time=_interval(row.valid_from, row.valid_to, temporal),
        )
    return mo
