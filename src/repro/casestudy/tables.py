"""The case study's base data — Table 1 of the paper, verbatim.

Four relational tables result from the standard mapping of the case
study's ER diagram (Figure 1): **Patient**, **Has** (patient-diagnosis,
with validity interval and primary/secondary type), **Diagnosis** (all
three granularities share one table, with code, text, and validity), and
**Grouping** (the "is part of" and "grouping" relationships, with
validity and WHO/user-defined type).  Dates use the paper's dd/mm/yy
format with the continuously-growing value NOW.

The rows below are byte-for-byte the paper's Table 1;
:func:`repro.report.tables.render_table1` re-renders them and the
Table 1 benchmark asserts equality.

Notes:

* the paper does not list rows for the patients' places of residence
  (the Lives-in relationship); :data:`LIVES_IN_ROWS` synthesizes a
  minimal, schema-faithful extension (flagged ``synthesized=True``)
  so the Residence dimension of the "Patient" MO is populated;
* Example 10 adds the cross-classification link "diagnosis 8 is
  contained in diagnosis 11 from 1980 on", which is not a Grouping row
  but an analysis-time addition to the dimension's partial order;
  :data:`EXAMPLE_10_LINK` records it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "PatientRow",
    "HasRow",
    "DiagnosisRow",
    "GroupingRow",
    "AreaRow",
    "LivesInRow",
    "PATIENT_ROWS",
    "HAS_ROWS",
    "DIAGNOSIS_ROWS",
    "GROUPING_ROWS",
    "AREA_ROWS",
    "LIVES_IN_ROWS",
    "EXAMPLE_10_LINK",
    "CATEGORY_OF_DIAGNOSIS",
    "LOW_LEVEL_IDS",
    "FAMILY_IDS",
    "GROUP_IDS",
]


@dataclass(frozen=True)
class PatientRow:
    """One row of the Patient table."""

    id: int
    name: str
    ssn: str
    date_of_birth: str


@dataclass(frozen=True)
class HasRow:
    """One row of the Has table (patient-diagnosis relationship)."""

    patient_id: int
    diagnosis_id: int
    valid_from: str
    valid_to: str
    type: str


@dataclass(frozen=True)
class DiagnosisRow:
    """One row of the Diagnosis table (all three granularities)."""

    id: int
    code: str
    text: str
    valid_from: str
    valid_to: str


@dataclass(frozen=True)
class GroupingRow:
    """One row of the Grouping table (parent contains child)."""

    parent_id: int
    child_id: int
    valid_from: str
    valid_to: str
    type: str


PATIENT_ROWS: Tuple[PatientRow, ...] = (
    PatientRow(1, "John Doe", "12345678", "25/05/69"),
    PatientRow(2, "Jane Doe", "87654321", "20/03/50"),
)

HAS_ROWS: Tuple[HasRow, ...] = (
    HasRow(1, 9, "01/01/89", "NOW", "Primary"),
    HasRow(2, 3, "23/03/75", "24/12/75", "Secondary"),
    HasRow(2, 8, "01/01/70", "31/12/81", "Primary"),
    HasRow(2, 5, "01/01/82", "30/09/82", "Secondary"),
    HasRow(2, 9, "01/01/82", "NOW", "Primary"),
)

DIAGNOSIS_ROWS: Tuple[DiagnosisRow, ...] = (
    DiagnosisRow(3, "P11", "Diabetes, pregnancy", "01/01/70", "31/12/79"),
    DiagnosisRow(4, "O24", "Diabetes, pregnancy", "01/01/80", "NOW"),
    DiagnosisRow(5, "O24.0", "Ins. dep. diab., pregn.", "01/01/80", "NOW"),
    DiagnosisRow(6, "O24.1", "Non ins. dep. diab., pregn.", "01/01/80", "NOW"),
    DiagnosisRow(7, "P1", "Other pregnancy diseases", "01/01/70", "31/12/79"),
    DiagnosisRow(8, "D1", "Diabetes", "01/10/70", "31/12/79"),
    DiagnosisRow(9, "E10", "Insulin dep. diabetes", "01/01/80", "NOW"),
    DiagnosisRow(10, "E11", "Non insulin dep. diabetes", "01/01/80", "NOW"),
    DiagnosisRow(11, "E1", "Diabetes", "01/01/80", "NOW"),
    DiagnosisRow(12, "O2", "Other pregnancy diseases", "01/10/80", "NOW"),
)

GROUPING_ROWS: Tuple[GroupingRow, ...] = (
    GroupingRow(4, 5, "01/01/80", "NOW", "WHO"),
    GroupingRow(4, 6, "01/01/80", "NOW", "WHO"),
    GroupingRow(7, 3, "01/01/70", "31/12/79", "WHO"),
    GroupingRow(8, 3, "01/01/70", "31/12/79", "User-defined"),
    GroupingRow(9, 5, "01/01/80", "NOW", "User-defined"),
    GroupingRow(10, 6, "01/01/80", "NOW", "User-defined"),
    GroupingRow(11, 9, "01/01/80", "NOW", "WHO"),
    GroupingRow(11, 10, "01/01/80", "NOW", "WHO"),
    GroupingRow(12, 4, "01/01/80", "NOW", "WHO"),
)

#: Example 10's analysis-time link: 8 ≤_[01/01/80 - NOW] 11 — the old
#: "Diabetes" family is logically contained in the new "Diabetes" group
#: from the classification change-over onward.
EXAMPLE_10_LINK: GroupingRow = GroupingRow(
    11, 8, "01/01/80", "NOW", "Analysis")

#: Category assignment of the diagnosis values (paper Example 4).
LOW_LEVEL_IDS: Tuple[int, ...] = (3, 5, 6)
FAMILY_IDS: Tuple[int, ...] = (4, 7, 8, 9, 10)
GROUP_IDS: Tuple[int, ...] = (11, 12)

CATEGORY_OF_DIAGNOSIS = {
    **{i: "Low-level Diagnosis" for i in LOW_LEVEL_IDS},
    **{i: "Diagnosis Family" for i in FAMILY_IDS},
    **{i: "Diagnosis Group" for i in GROUP_IDS},
}


@dataclass(frozen=True)
class AreaRow:
    """A place of residence at Area granularity with its County/Region
    ancestors (synthesized; the paper describes the hierarchy but lists
    no rows)."""

    id: int
    name: str
    county_id: int
    county_name: str
    region_id: int
    region_name: str
    synthesized: bool = True


@dataclass(frozen=True)
class LivesInRow:
    """A period of residence of a patient in an area (synthesized)."""

    patient_id: int
    area_id: int
    valid_from: str
    valid_to: str
    synthesized: bool = True


AREA_ROWS: Tuple[AreaRow, ...] = (
    AreaRow(101, "Aalborg East", 201, "North Jutland", 301, "Jutland"),
    AreaRow(102, "Aalborg West", 201, "North Jutland", 301, "Jutland"),
    AreaRow(103, "Aarhus North", 202, "East Jutland", 301, "Jutland"),
)

LIVES_IN_ROWS: Tuple[LivesInRow, ...] = (
    LivesInRow(1, 101, "25/05/69", "NOW"),
    LivesInRow(2, 103, "20/03/50", "31/12/79"),
    LivesInRow(2, 102, "01/01/80", "NOW"),
)
