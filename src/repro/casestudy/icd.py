"""Synthetic ICD-like diagnosis classifications.

The paper's diagnoses follow the WHO International Classification of
Diseases (ICD-10), which we cannot ship; this generator produces
classifications with the same *shape*: diagnosis groups containing 5-20
diagnosis families, each containing 5-20 low-level diagnoses (paper
§2.1), a strict WHO part, optional non-strict user-defined links, and
optionally two *eras* separated by a classification change-over with
cross-era containment links (the situation of Example 10).

All randomness is drawn from a caller-supplied :class:`random.Random`,
so workloads are reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.values import DimensionValue, SurrogateSource
from repro.temporal.chronon import NOW, day
from repro.temporal.timeset import ALWAYS, TimeSet

__all__ = ["IcdShape", "IcdClassification", "build_icd_dimension"]

#: Era boundaries matching the case study: the old classification is
#: valid through 1979, the new one from 1980 on.
OLD_ERA = TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))
NEW_ERA = TimeSet.interval(day(1980, 1, 1), NOW)


@dataclass(frozen=True)
class IcdShape:
    """Shape parameters of a synthetic classification."""

    n_groups: int = 5
    families_per_group: Tuple[int, int] = (5, 20)
    lowlevels_per_family: Tuple[int, int] = (5, 20)
    #: probability that a low-level diagnosis gets an extra (user-
    #: defined) parent family, making the hierarchy non-strict.
    extra_parent_prob: float = 0.0
    #: generate two eras with a change-over and cross-era links.
    two_eras: bool = False


@dataclass
class IcdClassification:
    """A generated classification: the dimension plus value inventories
    (used by workload generators to draw diagnoses)."""

    dimension: Dimension
    groups: List[DimensionValue] = field(default_factory=list)
    families: List[DimensionValue] = field(default_factory=list)
    low_levels: List[DimensionValue] = field(default_factory=list)
    #: per era (0 = old, 1 = new/only): the low-level values valid then.
    low_levels_by_era: List[List[DimensionValue]] = field(
        default_factory=list)


def _make_dimension() -> Dimension:
    ctypes = [
        CategoryType("Low-level Diagnosis", AggregationType.CONSTANT,
                     is_bottom=True),
        CategoryType("Diagnosis Family", AggregationType.CONSTANT),
        CategoryType("Diagnosis Group", AggregationType.CONSTANT),
    ]
    edges = [
        ("Low-level Diagnosis", "Diagnosis Family"),
        ("Diagnosis Family", "Diagnosis Group"),
    ]
    return Dimension(DimensionType("Diagnosis", ctypes, edges))


def build_icd_dimension(
    rng: random.Random,
    shape: IcdShape = IcdShape(),
    surrogates: Optional[SurrogateSource] = None,
) -> IcdClassification:
    """Generate a classification of the given shape.

    With ``shape.two_eras`` the whole tree is generated once per era
    (old codes valid through 1979, new from 1980), and each old group is
    linked into its corresponding new group from 1980 on — the Example
    10 pattern at scale.  Otherwise every annotation is ALWAYS.
    """
    surrogates = surrogates or SurrogateSource(start=1000)
    dimension = _make_dimension()
    result = IcdClassification(dimension=dimension)
    eras: List[Tuple[TimeSet, str]] = (
        [(OLD_ERA, "old"), (NEW_ERA, "new")] if shape.two_eras
        else [(ALWAYS, "only")]
    )
    groups_by_era: List[List[DimensionValue]] = []
    for era_time, era_tag in eras:
        era_groups: List[DimensionValue] = []
        era_lowlevels: List[DimensionValue] = []
        for g in range(shape.n_groups):
            group = surrogates.fresh_value(label=f"G{era_tag}{g}")
            dimension.add_value("Diagnosis Group", group, era_time)
            era_groups.append(group)
            result.groups.append(group)
            n_families = rng.randint(*shape.families_per_group)
            for f in range(n_families):
                family = surrogates.fresh_value(label=f"F{era_tag}{g}.{f}")
                dimension.add_value("Diagnosis Family", family, era_time)
                dimension.add_edge(family, group, time=era_time)
                result.families.append(family)
                n_low = rng.randint(*shape.lowlevels_per_family)
                for i in range(n_low):
                    low = surrogates.fresh_value(
                        label=f"L{era_tag}{g}.{f}.{i}")
                    dimension.add_value("Low-level Diagnosis", low, era_time)
                    dimension.add_edge(low, family, time=era_time)
                    result.low_levels.append(low)
                    era_lowlevels.append(low)
        groups_by_era.append(era_groups)
        result.low_levels_by_era.append(era_lowlevels)
    # non-strict user-defined links: an extra parent family per low-level
    if shape.extra_parent_prob > 0.0 and len(result.families) > 1:
        for low in result.low_levels:
            if rng.random() >= shape.extra_parent_prob:
                continue
            current_parents = dimension.order.parents(low)
            era_time = dimension.existence_time(low)
            candidates = [
                f for f in result.families
                if f not in current_parents
                and not dimension.existence_time(f).intersection(
                    era_time).is_empty()
            ]
            if candidates:
                extra = rng.choice(candidates)
                dimension.add_edge(
                    low, extra,
                    time=era_time.intersection(
                        dimension.existence_time(extra)))
    # cross-era links: old group g is contained in new group g from 1980
    if shape.two_eras:
        old_groups, new_groups = groups_by_era
        for old, new in zip(old_groups, new_groups):
            dimension.add_edge(old, new, time=NEW_ERA)
    return result
