"""The paper's clinical case study (§2.1): Table 1 data, the
six-dimensional "Patient" MO of Examples 1-10, and a synthetic
ICD-like classification generator for scaled workloads."""

from repro.casestudy.build import (
    DEFAULT_REFERENCE,
    age_dimension,
    case_study_mo,
    diagnosis_dimension,
    diagnosis_value,
    dob_dimension,
    name_dimension,
    patient_fact,
    residence_dimension,
    ssn_dimension,
)

__all__ = [
    "DEFAULT_REFERENCE",
    "age_dimension",
    "case_study_mo",
    "diagnosis_dimension",
    "diagnosis_value",
    "dob_dimension",
    "name_dimension",
    "patient_fact",
    "residence_dimension",
    "ssn_dimension",
]
