"""Cube materialization over the category lattice (paper §5 future
work; Gray et al.'s data cube generalized to the extended model).

The *cuboid lattice* of an MO is the product of its dimensions' category
lattices: one cuboid per choice of grouping category in each dimension,
ordered coarser-than.  :class:`CubeBuilder` enumerates and materializes
cuboids, and :func:`greedy_view_selection` picks a bounded set of
cuboids to materialize using the classic greedy benefit heuristic
(Harinarayan-Rajaraman-Ullman), with cuboid sizes measured as their
number of non-empty groups — summarizability decides which cuboids can
answer which queries, so non-summarizable edges contribute no benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.functions import AggregationFunction, SetCount
from repro.core.mo import MultidimensionalObject
from repro.engine.preagg import PreAggregateStore
from repro.obs import metrics, trace

__all__ = ["Cuboid", "CubeBuilder", "greedy_view_selection"]

_SIZED = metrics.counter("cube.cuboids_sized")
_MATERIALIZED = metrics.counter("cube.cuboids_materialized")
_ROLLUP_FROM_PARENT = metrics.counter("cube.rollup_from_parent")
_BASE_SCAN_FALLBACK = metrics.counter("cube.base_scan_fallback")
_PARENT_SIZE = metrics.histogram("cube.parent_size")

#: A cuboid id: the grouping category per dimension, in schema order.
CuboidKey = Tuple[str, ...]


@dataclass(frozen=True)
class Cuboid:
    """One cuboid of the lattice."""

    key: CuboidKey
    dimension_names: Tuple[str, ...]
    size: int  # number of non-empty groups
    summarizable: bool

    @property
    def grouping(self) -> Dict[str, str]:
        """The grouping mapping this cuboid represents."""
        return dict(zip(self.dimension_names, self.key))


class CubeBuilder:
    """Enumerates and materializes the cuboid lattice of an MO."""

    def __init__(self, mo: MultidimensionalObject,
                 dimensions: Optional[Sequence[str]] = None,
                 function: Optional[AggregationFunction] = None,
                 shared_scan: bool = True) -> None:
        self._mo = mo
        self._dims = tuple(dimensions or mo.dimension_names)
        self._function = function or SetCount()
        self._store = PreAggregateStore(mo)
        self._shared_scan = shared_scan
        self._cuboids: Dict[CuboidKey, Cuboid] = {}
        self._cuboids_stamp = self._versions()

    def _versions(self) -> Tuple[int, Tuple[Tuple[str, int, int], ...]]:
        """The MO mutation-counter state cuboid sizes and verdicts were
        computed from — fact-set version plus every dimension's (order,
        relation) versions."""
        mo = self._mo
        return (
            mo.facts_version,
            tuple(
                (name, mo.dimension(name).order.version,
                 mo.relation(name).version)
                for name in mo.dimension_names
            ),
        )

    def _check_cache(self) -> None:
        """Drop cached cuboids computed before the last MO mutation —
        sizes and summarizability verdicts are both version-sensitive."""
        stamp = self._versions()
        if stamp != self._cuboids_stamp:
            self._cuboids.clear()
            self._cuboids_stamp = stamp

    @property
    def store(self) -> PreAggregateStore:
        """The underlying pre-aggregate store."""
        return self._store

    def cuboid_keys(self) -> List[CuboidKey]:
        """All cuboid keys: the product of the category names of each
        dimension's lattice."""
        per_dim = [
            [ctype.name for ctype
             in self._mo.dimension(d).dtype.category_types()]
            for d in self._dims
        ]
        return [tuple(combo) for combo in product(*per_dim)]

    def _nontrivial(self, key: CuboidKey) -> Dict[str, str]:
        return {
            name: cat for name, cat in zip(self._dims, key)
            if cat != self._mo.dimension(name).dtype.top_name
        }

    def size_of(self, key: CuboidKey) -> int:
        """The cuboid's size — its number of non-empty groups — counted
        straight from the rollup index's characterization maps, without
        evaluating the aggregation function or storing results.

        This is the sizing fast path :func:`greedy_view_selection`
        scans the lattice with; :meth:`materialize` pays the full cost
        only for cuboids actually selected or queried.
        """
        self._check_cache()
        cached = self._cuboids.get(key)
        if cached is not None:
            return cached.size
        nontrivial = self._nontrivial(key)
        if not nontrivial:
            return 1  # the apex: one group holding every fact
        index = self._mo.rollup_index()
        # a fresh columnar layout (built by a materialization or an α
        # at this grouping) already knows the distinct-key count; peek
        # — never build — so sizing stays cheaper than materializing
        columnar = index.columnar().peek(
            {name: nontrivial[name] for name in sorted(nontrivial)})
        if columnar is not None:
            return len(columnar.rows_by_key())
        maps = [
            index.nonempty_fact_sets(name, cat)
            for name, cat in sorted(nontrivial.items())
        ]

        def count(i: int, facts) -> int:
            if i == len(maps):
                return 1
            total = 0
            for value_facts in maps[i]:
                joined = value_facts if facts is None else facts & value_facts
                if joined:
                    total += count(i + 1, joined)
            return total

        return count(0, None)

    def cuboid(self, key: CuboidKey) -> Cuboid:
        """The cuboid's size and summarizability verdict, computed via
        the sizing fast path (no full materialization) and cached until
        the next MO mutation."""
        self._check_cache()
        cached = self._cuboids.get(key)
        if cached is not None:
            return cached
        _SIZED.inc()
        with trace.span("cube.size", cuboid=key):
            verdict = self._store.summarizability(
                self._nontrivial(key), self._function.distributive)
            cuboid = Cuboid(
                key=key,
                dimension_names=self._dims,
                size=self.size_of(key),
                summarizable=verdict.summarizable,
            )
        self._cuboids[key] = cuboid
        return cuboid

    def materialize(self, key: CuboidKey) -> Cuboid:
        """Materialize one cuboid — results stored in the pre-aggregate
        store — and record its size and verdict.

        With shared scans enabled (the default) the store first tries
        to combine the cuboid from the smallest already-materialized
        strictly finer aggregate (``cube.rollup_from_parent``); only
        when no safe parent exists does it scan the base
        characterization maps (``cube.base_scan_fallback``)."""
        nontrivial = self._nontrivial(key)
        materialized = self._store.get(self._function, nontrivial)
        if materialized is None:
            with trace.span("cube.materialize", cuboid=key):
                materialized = self._store.materialize(
                    self._function, nontrivial,
                    shared_scan=self._shared_scan)
            _MATERIALIZED.inc()
            if materialized.via == "rollup":
                _ROLLUP_FROM_PARENT.inc()
                _PARENT_SIZE.observe(materialized.source_size)
            else:
                _BASE_SCAN_FALLBACK.inc()
        self._check_cache()
        cuboid = self._cuboids.get(key)
        if cuboid is None:
            # the materialized cells *are* the non-empty groups — record
            # the size straight from them instead of re-counting the
            # characterization maps
            verdict = self._store.summarizability(
                nontrivial, self._function.distributive)
            cuboid = Cuboid(
                key=key,
                dimension_names=self._dims,
                size=len(materialized.results) if nontrivial else 1,
                summarizable=verdict.summarizable,
            )
            self._cuboids[key] = cuboid
        return cuboid

    def _fineness(self, key: CuboidKey) -> int:
        """A topological rank: strictly finer cuboids rank strictly
        higher (each component counts the categories above it)."""
        rank = 0
        for name, cat in zip(self._dims, key):
            dtype = self._mo.dimension(name).dtype
            rank += sum(
                1 for ctype in dtype.category_types()
                if dtype.leq(cat, ctype.name)
            )
        return rank

    def materialize_all(self) -> List[Cuboid]:
        """Materialize the full lattice (exponential in dimensions with
        deep hierarchies; the benchmarks bound it).

        Cuboids are visited finest-first so every coarser cuboid finds
        its parents already in the store — the whole lattice beyond the
        base cuboid then materializes by combining stored cells instead
        of re-scanning facts, wherever the rollup gate allows it.
        Returns cuboids in lattice (finest-first) order."""
        keys = sorted(self.cuboid_keys(),
                      key=self._fineness, reverse=True)
        return [self.materialize(key) for key in keys]

    def is_coarser_or_equal(self, fine: CuboidKey, coarse: CuboidKey) -> bool:
        """Lattice order: ``coarse`` is answerable from ``fine`` when
        every component is ≥ in the dimension's category order."""
        for dim, f_cat, c_cat in zip(self._dims, fine, coarse):
            if not self._mo.dimension(dim).dtype.leq(f_cat, c_cat):
                return False
        return True

    def answerable_from(self, fine: CuboidKey) -> Set[CuboidKey]:
        """The cuboids answerable from ``fine`` by safe combination:
        coarser-or-equal cuboids, provided the fine cuboid's grouping is
        summarizable (otherwise only the cuboid itself)."""
        fine_cuboid = self.cuboid(fine)
        if not (fine_cuboid.summarizable and self._function.distributive):
            return {fine}
        return {
            key for key in self.cuboid_keys()
            if self.is_coarser_or_equal(fine, key)
        }


def greedy_view_selection(
    builder: CubeBuilder,
    budget: int,
) -> List[Cuboid]:
    """Pick up to ``budget`` cuboids to materialize, greedily maximizing
    the benefit of answering every cuboid from the cheapest selected
    ancestor (query cost = size of the cuboid it is answered from; the
    base cuboid — the finest key — is always available).

    Returns the selected cuboids in selection order.  The scan sizes
    candidate cuboids through :meth:`CubeBuilder.cuboid` (rollup-index
    counting); only the selected cuboids are fully materialized.
    """
    with trace.span("cube.greedy_view_selection", budget=budget):
        return _greedy_view_selection(builder, budget)


def _greedy_view_selection(
    builder: CubeBuilder,
    budget: int,
) -> List[Cuboid]:
    keys = builder.cuboid_keys()
    base_key = min(
        keys,
        key=lambda k: sum(
            1 for other in keys if builder.is_coarser_or_equal(k, other)
        ) * -1,
    )
    base = builder.cuboid(base_key)
    cost: Dict[CuboidKey, int] = {key: base.size for key in keys}
    selected: List[Cuboid] = []
    candidates = [k for k in keys if k != base_key]
    for _ in range(budget):
        best_key = None
        best_benefit = 0
        for key in candidates:
            cuboid = builder.cuboid(key)
            benefit = 0
            for target in builder.answerable_from(key):
                saved = cost[target] - cuboid.size
                if saved > 0:
                    benefit += saved
            if benefit > best_benefit:
                best_benefit = benefit
                best_key = key
        if best_key is None:
            break
        chosen = builder.materialize(best_key)
        selected.append(chosen)
        for target in builder.answerable_from(best_key):
            cost[target] = min(cost[target], chosen.size)
        candidates.remove(best_key)
    return selected
