"""Columnar group-key encoding for batch aggregation kernels.

The object-path aggregate formation (:mod:`repro.algebra.aggregate`)
materializes a ``Dict[combo, Set[Fact]]`` and walks Python objects per
group.  This module instead lays a grouping out flat, the way a column
store would:

* one fact-ordered ``array('q')`` of **composed group keys** — per
  grouped dimension the rollup index supplies a dense ``fact_id →
  value_id`` array (:meth:`RollupIndex.grouping_value_id_array`), the
  per-dimension value ids are mapped to local codes, and the codes are
  packed into a single integer by **mixed-radix** positional encoding
  (first grouped dimension most significant).  Facts with multi-valued
  (imprecise) characterizations product-expand into one row per value
  combination, exactly like the object path; facts uncharacterized in
  any grouped dimension drop out, exactly like the object path;
* one parallel ``array('q')`` of fact ids, so groups can be converted
  back to object-level ``FrozenSet[Fact]`` views on demand;
* per-dimension **measure columns** — each fact's measure count, sum,
  min and max in a result dimension, extracted once per relation
  version and gathered row-aligned per grouping.

Batch kernels (:meth:`AggregationFunction.batch_apply`) then evaluate
*every* group in one pass over the key column, instead of one Python
call per group.  Everything is version-stamped and rebuilt lazily, the
same staleness protocol as the rollup index; ``use_index=False`` stays
the byte-identity oracle (see docs/PERFORMANCE.md for the float-
ordering caveat on SUM/AVG).

Fallback rules (any of these routes the caller to the object path):

* a grouped dimension's radix product would exceed
  :data:`MAX_COMPOSED_KEY` (composed keys must stay machine ints) —
  :meth:`ColumnarStore.grouping` returns ``None``;
* the function has no batch kernel (``has_batch_kernel`` is False) —
  :meth:`ColumnarGrouping.evaluate` returns ``None``;
* a measure column is poisoned (some fact has a non-numeric surrogate
  in the argument dimension) — ``evaluate`` returns ``None`` and the
  per-group object path re-raises on exactly the groups the naive path
  would.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Mapping, Optional, Tuple

from repro.algebra.functions import (AggregationFunction, has_batch_kernel,
                                     measures_of)
from repro.core.errors import AlgebraError
from repro.core.values import DimensionValue
from repro.engine.rollup_index import (MULTI_VALUED, UNCHARACTERIZED,
                                       RollupIndex)
from repro.obs import metrics, trace

__all__ = [
    "MAX_COMPOSED_KEY",
    "MeasureColumn",
    "MeasureRows",
    "ColumnarGrouping",
    "ColumnarStore",
]

#: composed keys must stay within a signed 64-bit ``array('q')`` cell
#: (and cheap small-int arithmetic); a grouping whose radix product
#: exceeds this falls back to the object path.
MAX_COMPOSED_KEY = 2 ** 62

_BUILDS = metrics.counter("columnar.build")
_HITS = metrics.counter("columnar.hit")
_RADIX_FALLBACK = metrics.counter("columnar.fallback.radix")
_MEASURE_BUILDS = metrics.counter("columnar.measure_column.build")
_MEASURE_POISONED = metrics.counter("columnar.measure.poisoned")

#: one grouping-key combo decoded back to objects: the grouped value per
#: dimension, in the grouping's item order.
Combo = Tuple[DimensionValue, ...]


class MeasureColumn:
    """Per-fact measure summaries of one dimension, dense by fact id.

    ``counts[fid]`` is how many measures the fact has in the dimension
    (0 for none); ``sums``/``mins``/``maxs`` are its measure sum,
    minimum and maximum (0.0 placeholders when it has none).  When any
    fact of the MO carries a non-numeric surrogate, the column is
    *poisoned*: :attr:`error` holds the :class:`AlgebraError` and the
    kernels refuse to use it, so the object path keeps the exact
    raise-only-if-grouped semantics.
    """

    __slots__ = ("counts", "sums", "mins", "maxs", "error", "stamp")

    def __init__(self, size: int, stamp: Tuple[int, int]) -> None:
        self.counts = array("q", [0]) * size
        self.sums = array("d", [0.0]) * size
        self.mins = array("d", [0.0]) * size
        self.maxs = array("d", [0.0]) * size
        self.error: Optional[AlgebraError] = None
        self.stamp = stamp


class MeasureRows:
    """A :class:`MeasureColumn` gathered row-aligned with one grouping's
    key column — what :meth:`AggregationFunction.batch_apply` consumes."""

    __slots__ = ("counts", "sums", "mins", "maxs")

    def __init__(self, column: MeasureColumn, row_facts: array) -> None:
        self.counts = array("q", map(column.counts.__getitem__, row_facts))
        self.sums = array("d", map(column.sums.__getitem__, row_facts))
        self.mins = array("d", map(column.mins.__getitem__, row_facts))
        self.maxs = array("d", map(column.maxs.__getitem__, row_facts))


class ColumnarGrouping:
    """One grouping laid out flat: row-aligned key and fact-id columns
    plus the decode tables to map keys back to value combos.

    Rows are in fact-id order, one row per fact × characterization
    combination; a fact appears at most once per distinct key (its
    value combinations are all distinct), so per-key row counts are
    exact group sizes.  All views are lazy and cached; treat everything
    as read-only.
    """

    __slots__ = ("_index", "_store", "items", "keys", "row_facts", "_specs",
                 "_rows_by_key", "_groups", "_combos", "_measure_cache",
                 "stamp")

    def __init__(self, index: RollupIndex, store: "ColumnarStore",
                 items: Tuple[Tuple[str, str], ...],
                 keys: array, row_facts: array,
                 specs: List[Tuple[str, int, List[DimensionValue]]],
                 stamp: tuple) -> None:
        self._index = index
        self._store = store
        #: the grouping as ``(dimension, category)`` pairs, in order
        self.items = items
        #: composed mixed-radix group key per row
        self.keys = keys
        #: interned fact id per row, aligned with :attr:`keys`
        self.row_facts = row_facts
        #: per grouped dimension: (name, radix, code → value decode)
        self._specs = specs
        self._rows_by_key: Optional[Dict[int, List[int]]] = None
        self._groups: Optional[Dict[Combo, frozenset]] = None
        self._combos: Optional[Dict[int, Combo]] = None
        self._measure_cache: Dict[str, Tuple[MeasureColumn, MeasureRows]] = {}
        self.stamp = stamp

    @property
    def n_rows(self) -> int:
        """How many (fact × characterization) rows the grouping has."""
        return len(self.keys)

    def rows_by_key(self) -> Dict[int, List[int]]:
        """``composed key → row fact ids`` (the integer-level groups)."""
        rows = self._rows_by_key
        if rows is None:
            rows = {}
            get = rows.get
            for key, fid in zip(self.keys, self.row_facts):
                bucket = get(key)
                if bucket is None:
                    rows[key] = [fid]
                else:
                    bucket.append(fid)
            self._rows_by_key = rows
        return rows

    def combo_of(self, key: int) -> Combo:
        """Decode a composed key to its value combo (grouping order)."""
        values: List[DimensionValue] = []
        for _, radix, decode in reversed(self._specs):
            key, digit = divmod(key, radix)
            values.append(decode[digit])
        values.reverse()
        return tuple(values)

    def combos(self) -> Dict[int, Combo]:
        """Every distinct key decoded, cached."""
        if self._combos is None:
            self._combos = {key: self.combo_of(key)
                            for key in self.rows_by_key()}
        return self._combos

    def groups(self) -> Dict[Combo, frozenset]:
        """The object-level view: value combo → the facts of the group
        (byte-identical to the object path's formation)."""
        if self._groups is None:
            facts_of = self._index.facts_of_ids
            combos = self.combos()
            self._groups = {
                combos[key]: frozenset(facts_of(fids))
                for key, fids in self.rows_by_key().items()
            }
        return self._groups

    def measure_rows(self, dimension_name: str,
                     column: MeasureColumn) -> MeasureRows:
        """The column gathered row-aligned, cached per column identity
        (a rebuilt measure column invalidates the gather even when the
        grouping itself is still fresh)."""
        cached = self._measure_cache.get(dimension_name)
        if cached is not None and cached[0] is column:
            return cached[1]
        rows = MeasureRows(column, self.row_facts)
        self._measure_cache[dimension_name] = (column, rows)
        return rows

    def evaluate(self, function: AggregationFunction
                 ) -> Optional[Dict[Combo, object]]:
        """Run the function's batch kernel over every group at once.

        Returns ``combo → result`` with exactly the keys of
        :meth:`groups`, or ``None`` when the function has no kernel or
        an argument measure column is poisoned — the caller must then
        fall back to per-group :meth:`AggregationFunction.apply`.
        """
        if not has_batch_kernel(function):
            return None
        measures: Dict[str, MeasureRows] = {}
        for name in function.args:
            column = self._store.measure_column(name)
            if column.error is not None:
                return None
            measures[name] = self.measure_rows(name, column)
        by_key = function.batch_apply(self.keys, measures)
        if by_key is None:  # pragma: no cover - kernels never decline
            return None
        combos = self.combos()
        return {combos[key]: value for key, value in by_key.items()}


class ColumnarStore:
    """The per-MO cache of columnar groupings and measure columns.

    Obtained via :meth:`RollupIndex.columnar`.  Groupings are cached by
    their ``(dimension, category)`` item sequence (order-sensitive: the
    combo tuples follow it) and stamped with the MO's fact-set version
    plus the grouped dimensions' order/relation version pairs; measure
    columns are stamped with the relation version and fact-set version.
    Stale entries are rebuilt on access, never served.
    """

    def __init__(self, index: RollupIndex) -> None:
        self._index = index
        self._groupings: Dict[Tuple[Tuple[str, str], ...],
                              ColumnarGrouping] = {}
        self._measures: Dict[str, MeasureColumn] = {}

    def _grouping_stamp(self, items: Tuple[Tuple[str, str], ...]) -> tuple:
        mo = self._index.mo
        return (
            mo.facts_version,
            tuple((mo.dimension(name).order.version,
                   mo.relation(name).version) for name, _ in items),
        )

    def peek(self, grouping: Mapping[str, str]) -> Optional[ColumnarGrouping]:
        """A cached *fresh* grouping, or ``None`` — never builds (the
        cuboid-sizing fast path wants a free answer or nothing)."""
        items = tuple(grouping.items())
        entry = self._groupings.get(items)
        if entry is not None and entry.stamp == self._grouping_stamp(items):
            return entry
        return None

    def grouping(self, grouping: Mapping[str, str]
                 ) -> Optional[ColumnarGrouping]:
        """The columnar layout of a grouping (category per dimension;
        ⊤ categories are radix-1 components).  Served from cache while
        fresh, rebuilt otherwise; ``None`` when the radix product
        overflows :data:`MAX_COMPOSED_KEY` (fall back to the object
        path)."""
        items = tuple(grouping.items())
        stamp = self._grouping_stamp(items)
        entry = self._groupings.get(items)
        if entry is not None and entry.stamp == stamp:
            _HITS.inc()
            return entry
        entry = self._build_grouping(items, stamp)
        if entry is None:
            return None
        self._groupings[items] = entry
        return entry

    def _build_grouping(self, items: Tuple[Tuple[str, str], ...],
                        stamp: tuple) -> Optional[ColumnarGrouping]:
        index = self._index
        mo = index.mo
        with trace.span("columnar.build", grouping=items):
            specs: List[Tuple[str, int, List[DimensionValue]]] = []
            nontrivial = []  # (value-id column, multi map, code map, radix)
            empty = False
            max_key = 1
            for name, category in items:
                dimension = mo.dimension(name)
                if category == dimension.dtype.top_name:
                    # ⊤ groups every fact into one cell: radix 1
                    specs.append((name, 1, [dimension.top_value]))
                    continue
                column, multi = index.grouping_value_id_array(name, category)
                vids = {vid for vid in column if vid >= 0}
                for vid_tuple in multi.values():
                    vids.update(vid_tuple)
                if not vids:
                    # no fact characterized in this dimension: no groups
                    specs.append((name, 1, [dimension.top_value]))
                    empty = True
                    continue
                ordered = sorted(vids)
                code = {vid: i for i, vid in enumerate(ordered)}
                decode = [index.value_of(name, vid) for vid in ordered]
                radix = len(ordered)
                max_key *= radix
                if max_key > MAX_COMPOSED_KEY:
                    _RADIX_FALLBACK.inc()
                    return None
                specs.append((name, radix, decode))
                nontrivial.append((column, multi, code, radix))
            keys = array("q")
            row_facts = array("q")
            if not empty:
                self._fill_rows(nontrivial, keys, row_facts)
            _BUILDS.inc()
            return ColumnarGrouping(index, self, items, keys, row_facts,
                                    specs, stamp)

    def _fill_rows(self, nontrivial, keys: array, row_facts: array) -> None:
        """One pass over the MO's facts in id order, composing each
        fact's key digit by digit; imprecise facts product-expand."""
        index = self._index
        append_key = keys.append
        append_fact = row_facts.append
        fact_ids = sorted(index.mo_fact_ids())
        if not nontrivial:
            # every dimension grouped at ⊤: the single apex cell
            for fid in fact_ids:
                append_key(0)
                append_fact(fid)
            return
        for fid in fact_ids:
            composed = 0
            expansions = None
            for column, multi, code, radix in nontrivial:
                vid = column[fid] if fid < len(column) else UNCHARACTERIZED
                if vid >= 0:
                    digit = code[vid]
                    if expansions is None:
                        composed = composed * radix + digit
                    else:
                        expansions = [k * radix + digit for k in expansions]
                elif vid == MULTI_VALUED:
                    digits = [code[v] for v in multi[fid]]
                    if expansions is None:
                        expansions = [composed * radix + d for d in digits]
                    else:
                        expansions = [k * radix + d
                                      for k in expansions for d in digits]
                else:  # UNCHARACTERIZED: the fact drops out entirely
                    expansions = ()
                    break
            if expansions is None:
                append_key(composed)
                append_fact(fid)
            else:
                for key in expansions:
                    append_key(key)
                    append_fact(fid)

    def measure_column(self, dimension_name: str) -> MeasureColumn:
        """The per-fact measure summaries of one dimension, rebuilt when
        the dimension's relation or the MO's fact set moved."""
        index = self._index
        mo = index.mo
        stamp = (mo.relation(dimension_name).version, mo.facts_version)
        cached = self._measures.get(dimension_name)
        if cached is not None and cached.stamp == stamp:
            return cached
        _MEASURE_BUILDS.inc()
        fact_ids = index.mo_fact_ids()
        size = (max(fact_ids) + 1) if fact_ids else 0
        column = MeasureColumn(size, stamp)
        counts, sums = column.counts, column.sums
        mins, maxs = column.mins, column.maxs
        try:
            for fact in mo.facts:
                ms = measures_of(mo, dimension_name, fact)
                if ms:
                    fid = index.fact_id(fact)
                    counts[fid] = len(ms)
                    sums[fid] = sum(ms)
                    mins[fid] = min(ms)
                    maxs[fid] = max(ms)
        except AlgebraError as exc:
            # poisoned: some fact's surrogate is non-numeric; kernels
            # refuse the column so the object path raises exactly when
            # a bad fact is actually grouped
            column.error = exc
            _MEASURE_POISONED.inc()
        self._measures[dimension_name] = column
        return column
