"""Granularity-aware grouping (requirement 9, operationalized).

The model records data at mixed granularity: a patient may be linked to
a precise low-level diagnosis or only to an imprecise family.  Plain
aggregate formation at a *fine* category silently excludes the
imprecise facts (they characterize no fine value) — correct, but easy
to misread as "those patients do not exist".

This module makes the exclusion explicit and offers the standard
handling options for imprecise data in groupings (in the spirit of the
authors' follow-up work on imprecision):

* :func:`classify_by_granularity` — partition the facts into those
  answerable at the requested category and those recorded strictly
  coarser (per coarse value);
* :func:`group_with_imprecision` — group at the requested category and
  report an explicit *imprecise* bucket per coarser value instead of
  dropping facts;
* :func:`weighted_distribution` — distribute each imprecise fact over
  the fine values below its coarse value, uniformly weighted, yielding
  fractional counts whose total matches the fact count (a documented
  estimation policy, not part of the paper's model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.errors import SchemaError
from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue, Fact
from repro.obs import metrics, trace

__all__ = [
    "GranularityClassification",
    "classify_by_granularity",
    "ImpreciseGroups",
    "group_with_imprecision",
    "weighted_distribution",
    "UNATTRIBUTED",
]

#: The explicit "could not be distributed" bucket of
#: :func:`weighted_distribution`: mass of imprecise facts whose coarse
#: value has no descendant in the target category lands here instead of
#: silently vanishing.
UNATTRIBUTED = DimensionValue(sid=("__unattributed__",),
                              label="unattributed")

_UNATTRIBUTED_MASS = metrics.counter("imprecision.unattributed_mass")


@dataclass
class GranularityClassification:
    """Which facts can answer a grouping at a category, and which are
    recorded strictly coarser."""

    category: str
    #: facts characterized by at least one value of the category
    answerable: Set[Fact] = field(default_factory=set)
    #: facts whose finest characterization is coarser: coarse value →
    #: facts stuck at it
    imprecise: Dict[DimensionValue, Set[Fact]] = field(default_factory=dict)
    #: facts related only to ⊤ in this dimension
    unknown: Set[Fact] = field(default_factory=set)


def classify_by_granularity(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
) -> GranularityClassification:
    """Partition ``mo``'s facts by whether the requested category can
    see them."""
    dimension = mo.dimension(dimension_name)
    if category_name not in dimension.dtype:
        raise SchemaError(
            f"dimension {dimension_name!r} has no category "
            f"{category_name!r}"
        )
    relation = mo.relation(dimension_name)
    # a fact is answerable iff some category value characterizes it —
    # exactly the rollup index's inverted closure map for the category
    answerable = mo.rollup_index().grouping_values_per_fact(
        dimension_name, category_name)
    out = GranularityClassification(category=category_name)
    for fact in mo.facts:
        bases = relation.values_of(fact)
        non_top = {b for b in bases if not b.is_top}
        if not non_top:
            out.unknown.add(fact)
            continue
        if fact in answerable:
            out.answerable.add(fact)
            continue
        # strictly coarser: record the base values themselves
        for base in non_top:
            out.imprecise.setdefault(base, set()).add(fact)
    return out


@dataclass
class ImpreciseGroups:
    """Grouping results with the imprecise facts kept visible."""

    category: str
    #: fine value → facts characterized by it
    groups: Dict[DimensionValue, Set[Fact]]
    #: coarse value → facts only answerable there
    imprecise: Dict[DimensionValue, Set[Fact]]
    #: facts with no characterization in the dimension at all
    unknown: Set[Fact]

    def counts(self) -> Dict[str, int]:
        """Human-readable count summary (labels → counts).

        Keys are ordered by the values' reprs — which depend only on
        surrogate id and label — so the summary is identical however the
        underlying sets were built (sorting by the repr of the whole
        ``(value, fact-set)`` item would order by set iteration order,
        i.e. nondeterministically across runs).  Distinct values sharing
        a label get ``label#sid`` keys instead of silently merging into
        one entry.
        """
        out: Dict[str, int] = {}
        for label, count in self._labeled(self.groups, ""):
            out[label] = count
        for label, count in self._labeled(self.imprecise, "imprecise@"):
            out[label] = count
        if self.unknown:
            out["unknown"] = len(self.unknown)
        return out

    @staticmethod
    def _labeled(table: Dict[DimensionValue, Set[Fact]],
                 prefix: str) -> List[Tuple[str, int]]:
        """Deterministic ``(label, count)`` pairs for one bucket table,
        with colliding labels disambiguated by surrogate id."""
        items = [
            (value, facts) for value, facts in
            sorted(table.items(), key=lambda i: repr(i[0]))
            if facts
        ]
        seen: Dict[str, int] = {}
        for value, _ in items:
            label = value.label or str(value.sid)
            seen[label] = seen.get(label, 0) + 1
        out: List[Tuple[str, int]] = []
        for value, facts in items:
            label = value.label or str(value.sid)
            if seen[label] > 1:
                label = f"{label}#{value.sid}"
            out.append((f"{prefix}{label}", len(facts)))
        return out


def group_with_imprecision(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
) -> ImpreciseGroups:
    """Group at ``category_name`` without silently dropping coarser
    facts: they land in explicit per-coarse-value buckets."""
    classification = classify_by_granularity(mo, dimension_name,
                                             category_name)
    groups = {
        value: set(facts)
        for value, facts in mo.rollup_index().characterization_map(
            dimension_name, category_name).items()
    }
    return ImpreciseGroups(
        category=category_name,
        groups=groups,
        imprecise=classification.imprecise,
        unknown=classification.unknown,
    )


def weighted_distribution(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
) -> Dict[DimensionValue, float]:
    """Distribute imprecise facts uniformly over the fine values below
    their coarse value and return fractional counts per fine value.

    An imprecise fact whose coarse value has *no* descendant in the
    target category cannot be distributed; its mass is reported under
    the explicit :data:`UNATTRIBUTED` key (and counted on the
    ``imprecision.unattributed_mass`` metric) rather than dropped, so
    the total over all returned entries equals the answerable count
    plus one contribution per (imprecise fact, coarse bucket) pair —
    nothing is silently lost.  Facts characterized by several fine
    values (many-to-many) contribute 1 to *each*, matching the crisp
    grouping semantics of Example 12; facts related only to ⊤ stay in
    the ``unknown`` bucket of :func:`group_with_imprecision` and are
    not part of the distribution.
    """
    dimension = mo.dimension(dimension_name)
    with trace.span("imprecision.weighted_distribution",
                    dimension=dimension_name, category=category_name):
        grouped = group_with_imprecision(mo, dimension_name, category_name)
        counts: Dict[DimensionValue, float] = {
            value: float(len(facts))
            for value, facts in grouped.groups.items()
        }
        members = set(dimension.category(category_name).members())
        unattributed = 0.0
        for coarse, facts in grouped.imprecise.items():
            below = [
                v for v in dimension.descendants(coarse, reflexive=False)
                if v in members
            ]
            if not below:
                unattributed += float(len(facts))
                continue
            share = 1.0 / len(below)
            for value in below:
                counts[value] = counts.get(value, 0.0) + share * len(facts)
        if unattributed:
            counts[UNATTRIBUTED] = (
                counts.get(UNATTRIBUTED, 0.0) + unattributed)
            _UNATTRIBUTED_MASS.inc(unattributed)
    return counts
