"""Granularity-aware grouping (requirement 9, operationalized).

The model records data at mixed granularity: a patient may be linked to
a precise low-level diagnosis or only to an imprecise family.  Plain
aggregate formation at a *fine* category silently excludes the
imprecise facts (they characterize no fine value) — correct, but easy
to misread as "those patients do not exist".

This module makes the exclusion explicit and offers the standard
handling options for imprecise data in groupings (in the spirit of the
authors' follow-up work on imprecision):

* :func:`classify_by_granularity` — partition the facts into those
  answerable at the requested category and those recorded strictly
  coarser (per coarse value);
* :func:`group_with_imprecision` — group at the requested category and
  report an explicit *imprecise* bucket per coarser value instead of
  dropping facts;
* :func:`weighted_distribution` — distribute each imprecise fact over
  the fine values below its coarse value, uniformly weighted, yielding
  fractional counts whose total matches the fact count (a documented
  estimation policy, not part of the paper's model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.core.errors import SchemaError
from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue, Fact

__all__ = [
    "GranularityClassification",
    "classify_by_granularity",
    "ImpreciseGroups",
    "group_with_imprecision",
    "weighted_distribution",
]


@dataclass
class GranularityClassification:
    """Which facts can answer a grouping at a category, and which are
    recorded strictly coarser."""

    category: str
    #: facts characterized by at least one value of the category
    answerable: Set[Fact] = field(default_factory=set)
    #: facts whose finest characterization is coarser: coarse value →
    #: facts stuck at it
    imprecise: Dict[DimensionValue, Set[Fact]] = field(default_factory=dict)
    #: facts related only to ⊤ in this dimension
    unknown: Set[Fact] = field(default_factory=set)


def classify_by_granularity(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
) -> GranularityClassification:
    """Partition ``mo``'s facts by whether the requested category can
    see them."""
    dimension = mo.dimension(dimension_name)
    if category_name not in dimension.dtype:
        raise SchemaError(
            f"dimension {dimension_name!r} has no category "
            f"{category_name!r}"
        )
    relation = mo.relation(dimension_name)
    # a fact is answerable iff some category value characterizes it —
    # exactly the rollup index's inverted closure map for the category
    answerable = mo.rollup_index().grouping_values_per_fact(
        dimension_name, category_name)
    out = GranularityClassification(category=category_name)
    for fact in mo.facts:
        bases = relation.values_of(fact)
        non_top = {b for b in bases if not b.is_top}
        if not non_top:
            out.unknown.add(fact)
            continue
        if fact in answerable:
            out.answerable.add(fact)
            continue
        # strictly coarser: record the base values themselves
        for base in non_top:
            out.imprecise.setdefault(base, set()).add(fact)
    return out


@dataclass
class ImpreciseGroups:
    """Grouping results with the imprecise facts kept visible."""

    category: str
    #: fine value → facts characterized by it
    groups: Dict[DimensionValue, Set[Fact]]
    #: coarse value → facts only answerable there
    imprecise: Dict[DimensionValue, Set[Fact]]
    #: facts with no characterization in the dimension at all
    unknown: Set[Fact]

    def counts(self) -> Dict[str, int]:
        """Human-readable count summary (labels → counts)."""
        out = {
            (v.label or str(v.sid)): len(facts)
            for v, facts in sorted(self.groups.items(), key=lambda i: repr(i))
            if facts
        }
        for v, facts in sorted(self.imprecise.items(), key=lambda i: repr(i)):
            out[f"imprecise@{v.label or v.sid}"] = len(facts)
        if self.unknown:
            out["unknown"] = len(self.unknown)
        return out


def group_with_imprecision(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
) -> ImpreciseGroups:
    """Group at ``category_name`` without silently dropping coarser
    facts: they land in explicit per-coarse-value buckets."""
    classification = classify_by_granularity(mo, dimension_name,
                                             category_name)
    groups = {
        value: set(facts)
        for value, facts in mo.rollup_index().characterization_map(
            dimension_name, category_name).items()
    }
    return ImpreciseGroups(
        category=category_name,
        groups=groups,
        imprecise=classification.imprecise,
        unknown=classification.unknown,
    )


def weighted_distribution(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
) -> Dict[DimensionValue, float]:
    """Distribute imprecise facts uniformly over the fine values below
    their coarse value and return fractional counts per fine value.

    The total over all fine values plus the unknown bucket equals the
    number of facts with any characterization, so nothing is silently
    lost or double counted.  Facts characterized by several fine values
    (many-to-many) contribute 1 to *each*, matching the crisp grouping
    semantics of Example 12.
    """
    dimension = mo.dimension(dimension_name)
    grouped = group_with_imprecision(mo, dimension_name, category_name)
    counts: Dict[DimensionValue, float] = {
        value: float(len(facts)) for value, facts in grouped.groups.items()
    }
    members = set(dimension.category(category_name).members())
    for coarse, facts in grouped.imprecise.items():
        below = [
            v for v in dimension.descendants(coarse, reflexive=False)
            if v in members
        ]
        if not below:
            continue
        share = 1.0 / len(below)
        for value in below:
            counts[value] = counts.get(value, 0.0) + share * len(facts)
    return counts
