"""Pre-computed aggregates gated by summarizability (paper §3.4).

"Summarizability is an important concept as it is a condition for the
flexible use of pre-computed aggregates.  Without summarizability,
lower-level results generally cannot be directly combined into
higher-level results."

:class:`PreAggregateStore` materializes aggregate results at chosen
category levels and answers coarser queries by *combining* stored
results — but only when the Lenz-Shoshani condition holds (distributive
function, strict paths, partitioning hierarchies) between the stored
and requested levels.  When it does not, the store refuses and the
caller must recompute from base data; the summarizability benchmark
shows both the refusal and the cost difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.algebra.functions import AggregationFunction
from repro.core.errors import AlgebraError
from repro.core.mo import MultidimensionalObject
from repro.core.properties import SummarizabilityCheck
from repro.core.values import DimensionValue, Fact

__all__ = ["MaterializedAggregate", "PreAggregateStore"]

GroupKey = Tuple[DimensionValue, ...]


@dataclass
class MaterializedAggregate:
    """One materialized aggregate: results per group plus the
    summarizability verdict recorded at materialization time."""

    grouping: Dict[str, str]
    function_name: str
    results: Dict[GroupKey, object]
    groups: Dict[GroupKey, Set[Fact]]
    summarizability: SummarizabilityCheck


class PreAggregateStore:
    """Materializes and reuses aggregate results over one MO."""

    def __init__(self, mo: MultidimensionalObject) -> None:
        self._mo = mo
        # share the MO-attached index so closures built here also serve
        # the algebra and query layers (and vice versa)
        self._index = mo.rollup_index()
        self._store: Dict[Tuple[Tuple[Tuple[str, str], ...], str],
                          MaterializedAggregate] = {}

    @property
    def mo(self) -> MultidimensionalObject:
        """The base MO."""
        return self._mo

    @staticmethod
    def _key(grouping: Dict[str, str],
             function: AggregationFunction) -> Tuple[Tuple[Tuple[str, str], ...], str]:
        return tuple(sorted(grouping.items())), function.name

    def _verdict(self, grouping: Dict[str, str],
                 distributive: bool) -> SummarizabilityCheck:
        """The Lenz-Shoshani verdict for a grouping, from the rollup
        index's version-keyed cache: repeated reuse decisions do not
        re-scan the base data, yet a mutated dimension is re-checked."""
        return self._index.summarizability(grouping, distributive)

    def summarizability(self, grouping: Dict[str, str],
                        distributive: bool) -> SummarizabilityCheck:
        """The cached Lenz-Shoshani verdict for a grouping — exposed so
        the cube builder can judge cuboids without materializing them."""
        return self._verdict(grouping, distributive)

    def materialize(self, function: AggregationFunction,
                    grouping: Dict[str, str]) -> MaterializedAggregate:
        """Compute and store the aggregate at the given grouping levels
        (single- or multi-dimension), straight from the base data via
        the rollup index."""
        maps = {
            name: self._index.characterization_map(name, cat)
            for name, cat in grouping.items()
        }
        groups: Dict[GroupKey, Set[Fact]] = {}
        names = sorted(grouping)
        if names:
            first = names[0]
            for combo, facts in self._expand(names, maps):
                if facts:
                    groups[combo] = facts
        else:
            groups[()] = set(self._mo.facts)
        results = {
            combo: function.apply(facts, self._mo)
            for combo, facts in groups.items()
        }
        verdict = self._verdict(grouping, function.distributive)
        materialized = MaterializedAggregate(
            grouping=dict(grouping),
            function_name=function.name,
            results=results,
            groups=groups,
            summarizability=verdict,
        )
        self._store[self._key(grouping, function)] = materialized
        return materialized

    def _expand(self, names, maps):
        """All value combinations with their intersected fact sets."""

        def rec(i: int, prefix: GroupKey, facts: Optional[Set[Fact]]):
            if i == len(names):
                yield prefix, facts if facts is not None else set()
                return
            for value, value_facts in maps[names[i]].items():
                joined = (set(value_facts) if facts is None
                          else facts & value_facts)
                if not joined:
                    continue
                yield from rec(i + 1, prefix + (value,), joined)

        yield from rec(0, (), None)

    def get(self, function: AggregationFunction,
            grouping: Dict[str, str]) -> Optional[MaterializedAggregate]:
        """A previously materialized aggregate, if any."""
        return self._store.get(self._key(grouping, function))

    def entries(self):
        """Iterate ``(grouping dict, function name, materialized)`` for
        every stored aggregate."""
        for (grouping_key, function_name), stored in self._store.items():
            yield dict(grouping_key), function_name, stored

    def can_roll_up(
        self,
        stored: MaterializedAggregate,
        function: AggregationFunction,
        target_grouping: Dict[str, str],
    ) -> bool:
        """Whether ``stored`` may be combined into the coarser
        ``target_grouping``: the stored aggregate must have been
        summarizable, the function distributive, the target must be
        coarser in every dimension, and the hierarchy between stored and
        target levels strict and partitioning (re-checked at the target
        levels)."""
        if not stored.summarizability.summarizable:
            return False
        if not function.distributive:
            return False
        if set(target_grouping) != set(stored.grouping):
            return False
        for name, target_cat in target_grouping.items():
            dtype = self._mo.dimension(name).dtype
            if not dtype.leq(stored.grouping[name], target_cat):
                return False
        target_verdict = self._verdict(target_grouping,
                                       function.distributive)
        return target_verdict.summarizable

    def roll_up(
        self,
        function: AggregationFunction,
        source_grouping: Dict[str, str],
        target_grouping: Dict[str, str],
    ) -> Dict[GroupKey, object]:
        """Answer a coarser aggregate by combining a stored finer one.

        Raises :class:`AlgebraError` when reuse is unsafe (the paper's
        "we have to pre-compute the total results ... while other
        aggregates must be computed from the base data").
        """
        stored = self.get(function, source_grouping)
        if stored is None:
            raise AlgebraError(
                f"no materialized aggregate at {source_grouping!r}"
            )
        if not self.can_roll_up(stored, function, target_grouping):
            raise AlgebraError(
                f"cannot combine {source_grouping!r} into "
                f"{target_grouping!r}: "
                f"{stored.summarizability.explain()}"
            )
        names = sorted(target_grouping)
        partials: Dict[GroupKey, list] = {}
        for combo, result in stored.results.items():
            target_combo = []
            ok = True
            for name, value in zip(sorted(stored.grouping), combo):
                parent = self._parent_in(name, value,
                                         target_grouping[name])
                if parent is None:
                    ok = False
                    break
                target_combo.append(parent)
            if ok:
                partials.setdefault(tuple(target_combo), []).append(result)
        return {
            combo: function.combine(values)
            for combo, values in partials.items()
        }

    def _parent_in(self, dimension_name: str, value: DimensionValue,
                   category_name: str) -> Optional[DimensionValue]:
        dimension = self._mo.dimension(dimension_name)
        if dimension.category_name_of(value) == category_name:
            return value
        category = dimension.category(category_name)
        for ancestor in dimension.ancestors(value, reflexive=False):
            if ancestor in category:
                return ancestor
        return None

    def compute_from_base(
        self,
        function: AggregationFunction,
        grouping: Dict[str, str],
    ) -> Dict[GroupKey, object]:
        """The fallback: evaluate directly against the base data (used
        when reuse is refused; the benchmarks compare its cost with
        :meth:`roll_up`)."""
        return self.materialize(function, grouping).results
