"""Pre-computed aggregates gated by summarizability (paper §3.4).

"Summarizability is an important concept as it is a condition for the
flexible use of pre-computed aggregates.  Without summarizability,
lower-level results generally cannot be directly combined into
higher-level results."

:class:`PreAggregateStore` materializes aggregate results at chosen
category levels and answers coarser queries by *combining* stored
results — but only when the Lenz-Shoshani condition holds (distributive
function, strict paths, partitioning hierarchies) between the stored
and requested levels.  When it does not, the store refuses and the
caller must recompute from base data; the summarizability benchmark
shows both the refusal and the cost difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Optional, Set, Tuple

from repro.algebra.functions import AggregationFunction
from repro.core.errors import AlgebraError
from repro.core.mo import MultidimensionalObject
from repro.core.properties import SummarizabilityCheck
from repro.core.values import DimensionValue, Fact
from repro.obs import metrics, trace

__all__ = ["MaterializedAggregate", "PreAggregateStore"]

GroupKey = Tuple[DimensionValue, ...]

#: the MO state a materialization was computed from: the fact-set
#: version plus every dimension's (order version, relation version) —
#: all dimensions, not just the grouped ones, because the aggregation
#: function may read measures from any relation (e.g. ``Sum("Age")``)
VersionStamp = Tuple[int, Tuple[Tuple[str, int, int], ...]]

_MATERIALIZE = metrics.counter("preagg.materialize")
_MATERIALIZE_BASE = metrics.counter("preagg.materialize.base")
_MATERIALIZE_ROLLUP = metrics.counter("preagg.materialize.rollup")
_REUSE = metrics.counter("preagg.reuse")
_REFUSE = metrics.counter("preagg.refuse")
_STALE_EVICTED = metrics.counter("preagg.stale_evicted")
_COVERAGE_REFUSED = metrics.counter("preagg.coverage_refused")

#: sentinel distinguishing "not yet resolved" from "no target ancestor"
#: in the rollup translation tables
_MISSING = object()


@dataclass
class MaterializedAggregate:
    """One materialized aggregate: results per group plus the
    summarizability verdict and MO version stamp recorded at
    materialization time."""

    grouping: Dict[str, str]
    function_name: str
    results: Dict[GroupKey, object]
    #: group members per combo; frozensets on the columnar/rollup paths,
    #: plain sets on the map-expansion fallback — equal either way
    groups: Dict[GroupKey, AbstractSet[Fact]]
    summarizability: SummarizabilityCheck
    #: the (fact-set, per-dimension order/relation) versions this was
    #: built from; the store serves it only while they still match
    versions: VersionStamp = field(default=(0, ()))
    #: how this was computed: ``"base"`` (characterization-map scan) or
    #: ``"rollup"`` (combined from a finer stored aggregate)
    via: str = "base"
    #: for ``via="rollup"``: the source grouping and its cell count —
    #: the cube layer reports the parent-size histogram from this
    source_grouping: Optional[Dict[str, str]] = None
    source_size: int = 0


class PreAggregateStore:
    """Materializes and reuses aggregate results over one MO."""

    def __init__(self, mo: MultidimensionalObject) -> None:
        self._mo = mo
        # share the MO-attached index so closures built here also serve
        # the algebra and query layers (and vice versa)
        self._index = mo.rollup_index()
        self._store: Dict[Tuple[Tuple[Tuple[str, str], ...], str],
                          MaterializedAggregate] = {}

    @property
    def mo(self) -> MultidimensionalObject:
        """The base MO."""
        return self._mo

    @staticmethod
    def _key(grouping: Dict[str, str],
             function: AggregationFunction
             ) -> Tuple[Tuple[Tuple[str, str], ...], str]:
        return tuple(sorted(grouping.items())), function.name

    def _verdict(self, grouping: Dict[str, str],
                 distributive: bool) -> SummarizabilityCheck:
        """The Lenz-Shoshani verdict for a grouping, from the rollup
        index's version-keyed cache: repeated reuse decisions do not
        re-scan the base data, yet a mutated dimension is re-checked."""
        return self._index.summarizability(grouping, distributive)

    def summarizability(self, grouping: Dict[str, str],
                        distributive: bool) -> SummarizabilityCheck:
        """The cached Lenz-Shoshani verdict for a grouping — exposed so
        the cube builder can judge cuboids without materializing them."""
        return self._verdict(grouping, distributive)

    def _stamp(self) -> VersionStamp:
        """The MO's current mutation-counter state, recorded on each
        materialization and re-checked before any reuse."""
        mo = self._mo
        return (
            mo.facts_version,
            tuple(
                (name, mo.dimension(name).order.version,
                 mo.relation(name).version)
                for name in mo.dimension_names
            ),
        )

    def _is_fresh(self, stored: MaterializedAggregate) -> bool:
        return stored.versions == self._stamp()

    def materialize(self, function: AggregationFunction,
                    grouping: Dict[str, str],
                    shared_scan: bool = True) -> MaterializedAggregate:
        """Compute and store the aggregate at the given grouping levels
        (single- or multi-dimension).

        The *shared-scan* path (default) first looks for the smallest
        already-stored, still-fresh aggregate at a strictly finer
        grouping from which this one can be safely combined
        (:meth:`can_roll_up`: distributive function, exact
        per-dimension coverage between the changed levels) and rolls
        its cell values and groups up instead of re-scanning the
        characterization maps.  ``shared_scan=False`` forces the base
        path — the per-cuboid comparator the benchmarks time against.
        Either way the stored entry is byte-identical: the rollup gate
        refuses whenever combining could differ from a base scan.
        """
        _MATERIALIZE.inc()
        if shared_scan and grouping:
            source = self._rollup_source(function, grouping)
            if source is not None:
                return self._materialize_rollup(source, function, grouping)
        return self._materialize_base(function, grouping)

    def _materialize_base(self, function: AggregationFunction,
                          grouping: Dict[str, str]) -> MaterializedAggregate:
        """The base path: lay the grouping out columnar and evaluate
        ``function`` with its batch kernel — falling back to expanding
        the characterization maps (key-space overflow) and/or per-group
        ``apply`` (no kernel, poisoned measures) on the same groups."""
        _MATERIALIZE_BASE.inc()
        with trace.span("preagg.materialize",
                        grouping=tuple(sorted(grouping.items())),
                        function=function.name):
            stamp = self._stamp()
            groups: Dict[GroupKey, AbstractSet[Fact]] = {}
            results: Optional[Dict[GroupKey, object]] = None
            names = sorted(grouping)
            columnar = (self._index.columnar().grouping(
                {name: grouping[name] for name in names}) if names else None)
            if columnar is not None:
                groups = dict(columnar.groups())
                results = columnar.evaluate(function)
            elif names:
                maps = {
                    name: self._index.characterization_map(name, cat)
                    for name, cat in grouping.items()
                }
                for combo, facts in self._expand(names, maps):
                    if facts:
                        groups[combo] = facts
            elif self._mo.facts:
                # a fact-less MO has no grand-total group, matching the
                # α path, which produces no result fact either
                groups[()] = set(self._mo.facts)
            if results is None:
                results = {
                    combo: function.apply(facts, self._mo)
                    for combo, facts in groups.items()
                }
            verdict = self._verdict(grouping, function.distributive)
        materialized = MaterializedAggregate(
            grouping=dict(grouping),
            function_name=function.name,
            results=results,
            groups=groups,
            summarizability=verdict,
            versions=stamp,
        )
        self._store[self._key(grouping, function)] = materialized
        return materialized

    def _rollup_source(
        self, function: AggregationFunction, grouping: Dict[str, str],
    ) -> Optional[MaterializedAggregate]:
        """The smallest stored, fresh, strictly finer aggregate from
        which ``grouping`` can be safely combined — or ``None``, in
        which case the caller scans from base."""
        target_key = tuple(sorted(grouping.items()))
        best: Optional[MaterializedAggregate] = None
        for (grouping_key, function_name), stored in list(self._store.items()):
            if function_name != function.name:
                continue
            if grouping_key == target_key:
                continue  # recomputation was asked for; do not self-serve
            if best is not None and len(stored.results) >= len(best.results):
                continue  # a smaller parent is already in hand
            if self.can_roll_up(stored, function, grouping):
                best = stored
        return best

    def _materialize_rollup(
        self,
        stored: MaterializedAggregate,
        function: AggregationFunction,
        grouping: Dict[str, str],
    ) -> MaterializedAggregate:
        """Combine a finer stored aggregate into ``grouping`` — cell
        values merge with ``function.combine``, groups by set union —
        and store the result exactly as the base path would."""
        _MATERIALIZE_ROLLUP.inc()
        with trace.span("preagg.materialize_rollup",
                        source=tuple(sorted(stored.grouping.items())),
                        target=tuple(sorted(grouping.items())),
                        function=function.name):
            stamp = self._stamp()
            partials: Dict[GroupKey, list] = {}
            member_sets: Dict[GroupKey, List[AbstractSet[Fact]]] = {}
            # per-dimension value → target-ancestor tables, built once
            # from the stored category's members so the per-cell loop
            # below is nothing but dict lookups
            translators = self._translators(stored.grouping, grouping)
            source_groups = stored.groups
            for combo, result in stored.results.items():
                target_key = []
                for pos, table, name, target_cat in translators:
                    value = combo[pos]
                    if table is not None:
                        parent = table.get(value, _MISSING)
                        if parent is _MISSING:
                            # a stored value outside the category's
                            # member list (e.g. carried over from a
                            # previous rollup): resolve and memoize
                            parent = table[value] = self._parent_in(
                                name, value, target_cat)
                        if parent is None:
                            target_key = None  # no target ancestor
                            break
                        value = parent
                    target_key.append(value)
                if target_key is None:
                    continue
                target_combo = tuple(target_key)
                bucket = partials.get(target_combo)
                if bucket is None:
                    partials[target_combo] = [result]
                    member_sets[target_combo] = [source_groups[combo]]
                else:
                    bucket.append(result)
                    member_sets[target_combo].append(source_groups[combo])
            # one n-ary union per target cell instead of building up
            # intermediate sets pairwise — the former cube hotspot
            groups: Dict[GroupKey, AbstractSet[Fact]] = {
                combo: frozenset().union(*sets)
                for combo, sets in member_sets.items()
            }
            results = {
                combo: function.combine(values)
                for combo, values in partials.items()
            }
            verdict = self._verdict(grouping, function.distributive)
        materialized = MaterializedAggregate(
            grouping=dict(grouping),
            function_name=function.name,
            results=results,
            groups=groups,
            summarizability=verdict,
            versions=stamp,
            via="rollup",
            source_grouping=dict(stored.grouping),
            source_size=len(stored.results),
        )
        self._store[self._key(grouping, function)] = materialized
        return materialized

    def _translators(self, stored_grouping: Dict[str, str],
                     target_grouping: Dict[str, str]):
        """Per target dimension (sorted order): ``(source position,
        table, name, target category)`` — the source-combo position of
        the dimension's value plus a value → target-ancestor table
        (``None`` table for pass-through dimensions whose category is
        unchanged).  Dimensions the target drops entirely have no entry
        — their values collapse into one cell.  Table entries map to
        ``None`` where a member has no ancestor in the target category
        (non-covering hierarchies); such cells are dropped, matching
        the characterization maps the base path expands."""
        src_names = sorted(stored_grouping)
        position = {name: i for i, name in enumerate(src_names)}
        translators = []
        for name in sorted(target_grouping):
            target_cat = target_grouping[name]
            if stored_grouping[name] == target_cat:
                translators.append((position[name], None, name, target_cat))
                continue
            dimension = self._mo.dimension(name)
            table = {
                member: self._parent_in(name, member, target_cat)
                for member in
                dimension.category(stored_grouping[name]).members()
            }
            translators.append((position[name], table, name, target_cat))
        return translators

    def _combo_map(self, stored: MaterializedAggregate,
                   target_grouping: Dict[str, str]):
        """Yield ``(source combo, target combo)`` for every source cell
        that survives the rollup: each value maps to its unique ancestor
        in the target category; dimensions the target groups at ⊤ are
        dropped from the key (their values collapse into one cell)."""
        translators = self._translators(stored.grouping, target_grouping)
        for combo in stored.results:
            target_combo = []
            ok = True
            for pos, table, name, target_cat in translators:
                value = combo[pos]
                if table is not None:
                    parent = table.get(value, _MISSING)
                    if parent is _MISSING:
                        parent = table[value] = self._parent_in(
                            name, value, target_cat)
                    if parent is None:
                        ok = False
                        break
                    value = parent
                target_combo.append(value)
            if ok:
                yield combo, tuple(target_combo)

    def _expand(self, names, maps):
        """All value combinations with their intersected fact sets."""

        def rec(i: int, prefix: GroupKey, facts: Optional[Set[Fact]]):
            if i == len(names):
                yield prefix, facts if facts is not None else set()
                return
            for value, value_facts in maps[names[i]].items():
                joined = (set(value_facts) if facts is None
                          else facts & value_facts)
                if not joined:
                    continue
                yield from rec(i + 1, prefix + (value,), joined)

        yield from rec(0, (), None)

    def get(self, function: AggregationFunction,
            grouping: Dict[str, str]) -> Optional[MaterializedAggregate]:
        """A previously materialized aggregate, if any — only while its
        version stamp still matches the MO (a mutation since
        materialization evicts the entry instead of serving stale
        results)."""
        key = self._key(grouping, function)
        stored = self._store.get(key)
        if stored is None:
            return None
        if not self._is_fresh(stored):
            del self._store[key]
            _STALE_EVICTED.inc()
            return None
        return stored

    def entries(self):
        """Iterate ``(grouping dict, function name, materialized)`` for
        every stored aggregate that is still fresh; stale entries are
        evicted, not yielded."""
        stamp = self._stamp()
        stale = [key for key, stored in self._store.items()
                 if stored.versions != stamp]
        for key in stale:
            del self._store[key]
            _STALE_EVICTED.inc()
        for (grouping_key, function_name), stored in list(self._store.items()):
            yield dict(grouping_key), function_name, stored

    def can_roll_up(
        self,
        stored: MaterializedAggregate,
        function: AggregationFunction,
        target_grouping: Dict[str, str],
    ) -> bool:
        """Whether ``stored`` may be combined into the coarser
        ``target_grouping``: the stored aggregate must still be fresh,
        the function distributive, the target coarser in every
        dimension — a dimension absent from the target counts as rolled
        all the way to ⊤ — and every dimension whose level changes must
        pass the exact per-dimension summarizability check
        (:meth:`_stored_level_covers`).

        The check is per *changed* dimension on purpose: a grouping's
        schema-level verdict can fail because of a dimension that the
        rollup passes through unchanged (e.g. a many-to-many diagnosis
        level held fixed while residence coarsens) — pass-through
        dimensions filter both sides identically, so they cannot break
        byte-identity."""
        if not self._is_fresh(stored):
            return False
        if not function.distributive:
            return False
        if not target_grouping:
            # the apex cell is the whole fact set; the base path builds
            # it directly without expanding any map — never roll into it
            return False
        if set(target_grouping) - set(stored.grouping):
            return False
        for name, target_cat in target_grouping.items():
            dtype = self._mo.dimension(name).dtype
            if not dtype.leq(stored.grouping[name], target_cat):
                return False
        if not self._stored_level_covers(stored.grouping, target_grouping):
            _COVERAGE_REFUSED.inc()
            return False
        return True

    def _stored_level_covers(self, stored_grouping: Dict[str, str],
                             target_grouping: Dict[str, str]) -> bool:
        """The summarizability condition the paper leaves implicit: the
        fact characterizations at the *stored* level must be many-to-one
        onto the facts visible at the target level — every fact
        characterized at the target category characterized by exactly
        one stored-category value.

        Without it, combining stored results miscounts under mixed
        granularity: a fact recorded only at a coarse value (an
        imprecise fact) appears in the direct target-level grouping but
        in no stored fine-level group, so the combined result silently
        loses it; a fact under two stored siblings would conversely be
        counted twice.  The per-pair verdicts come from the rollup
        index's version-keyed :meth:`~RollupIndex.covers` cache, so
        repeated checks (one per lattice edge considered) do not
        re-scan the data.  A dimension the target drops entirely is
        checked against ⊤ — the fact must sit in exactly one stored
        cell of that dimension to collapse into the target cell once.
        """
        index = self._index
        for name, stored_cat in stored_grouping.items():
            dtype = self._mo.dimension(name).dtype
            target_cat = target_grouping.get(name, dtype.top_name)
            if not index.covers(name, stored_cat, target_cat):
                return False
        return True

    def roll_up(
        self,
        function: AggregationFunction,
        source_grouping: Dict[str, str],
        target_grouping: Dict[str, str],
    ) -> Dict[GroupKey, object]:
        """Answer a coarser aggregate by combining a stored finer one.

        Raises :class:`AlgebraError` when reuse is unsafe (the paper's
        "we have to pre-compute the total results ... while other
        aggregates must be computed from the base data").
        """
        return self.rolled_up(function, source_grouping,
                              target_grouping)[0]

    def rolled_up(
        self,
        function: AggregationFunction,
        source_grouping: Dict[str, str],
        target_grouping: Dict[str, str],
    ) -> Tuple[Dict[GroupKey, object], Dict[GroupKey, AbstractSet[Fact]]]:
        """:meth:`roll_up`, but also returning each target cell's member
        set (the union of its source cells') — callers that present the
        combined aggregate the way α would need the member sets to merge
        value combinations selecting the same facts."""
        stored = self.get(function, source_grouping)
        if stored is None:
            raise AlgebraError(
                f"no materialized aggregate at {source_grouping!r}"
            )
        if not self.can_roll_up(stored, function, target_grouping):
            _REFUSE.inc()
            reason = stored.summarizability.explain()
            if stored.summarizability.summarizable:
                reason = ("stored-level fact characterizations are not "
                          "many-to-one onto the target level (mixed "
                          "granularity or many-to-many), or the target "
                          "level is itself not summarizable")
            raise AlgebraError(
                f"cannot combine {source_grouping!r} into "
                f"{target_grouping!r}: {reason}"
            )
        _REUSE.inc()
        with trace.span("preagg.roll_up",
                        source=tuple(sorted(source_grouping.items())),
                        target=tuple(sorted(target_grouping.items()))):
            partials: Dict[GroupKey, list] = {}
            member_sets: Dict[GroupKey, List[AbstractSet[Fact]]] = {}
            for combo, target_combo in self._combo_map(stored,
                                                       target_grouping):
                partials.setdefault(target_combo, []).append(
                    stored.results[combo])
                member_sets.setdefault(target_combo, []).append(
                    stored.groups[combo])
            return (
                {
                    combo: function.combine(values)
                    for combo, values in partials.items()
                },
                {
                    combo: frozenset().union(*sets)
                    for combo, sets in member_sets.items()
                },
            )

    def _parent_in(self, dimension_name: str, value: DimensionValue,
                   category_name: str) -> Optional[DimensionValue]:
        dimension = self._mo.dimension(dimension_name)
        if dimension.category_name_of(value) == category_name:
            return value
        category = dimension.category(category_name)
        for ancestor in dimension.ancestors(value, reflexive=False):
            if ancestor in category:
                return ancestor
        return None

    def compute_from_base(
        self,
        function: AggregationFunction,
        grouping: Dict[str, str],
    ) -> Dict[GroupKey, object]:
        """The fallback: evaluate directly against the base data (used
        when reuse is refused; the benchmarks compare its cost with
        :meth:`roll_up`).  Always takes the base path — this method is
        the oracle the shared-scan equivalence tests compare against."""
        return self.materialize(function, grouping, shared_scan=False).results
