"""Pre-computed aggregates gated by summarizability (paper §3.4).

"Summarizability is an important concept as it is a condition for the
flexible use of pre-computed aggregates.  Without summarizability,
lower-level results generally cannot be directly combined into
higher-level results."

:class:`PreAggregateStore` materializes aggregate results at chosen
category levels and answers coarser queries by *combining* stored
results — but only when the Lenz-Shoshani condition holds (distributive
function, strict paths, partitioning hierarchies) between the stored
and requested levels.  When it does not, the store refuses and the
caller must recompute from base data; the summarizability benchmark
shows both the refusal and the cost difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.algebra.functions import AggregationFunction
from repro.core.errors import AlgebraError
from repro.core.mo import MultidimensionalObject
from repro.core.properties import SummarizabilityCheck
from repro.core.values import DimensionValue, Fact
from repro.obs import metrics, trace

__all__ = ["MaterializedAggregate", "PreAggregateStore"]

GroupKey = Tuple[DimensionValue, ...]

#: the MO state a materialization was computed from: the fact-set
#: version plus every dimension's (order version, relation version) —
#: all dimensions, not just the grouped ones, because the aggregation
#: function may read measures from any relation (e.g. ``Sum("Age")``)
VersionStamp = Tuple[int, Tuple[Tuple[str, int, int], ...]]

_MATERIALIZE = metrics.counter("preagg.materialize")
_REUSE = metrics.counter("preagg.reuse")
_REFUSE = metrics.counter("preagg.refuse")
_STALE_EVICTED = metrics.counter("preagg.stale_evicted")
_COVERAGE_REFUSED = metrics.counter("preagg.coverage_refused")


@dataclass
class MaterializedAggregate:
    """One materialized aggregate: results per group plus the
    summarizability verdict and MO version stamp recorded at
    materialization time."""

    grouping: Dict[str, str]
    function_name: str
    results: Dict[GroupKey, object]
    groups: Dict[GroupKey, Set[Fact]]
    summarizability: SummarizabilityCheck
    #: the (fact-set, per-dimension order/relation) versions this was
    #: built from; the store serves it only while they still match
    versions: VersionStamp = field(default=(0, ()))


class PreAggregateStore:
    """Materializes and reuses aggregate results over one MO."""

    def __init__(self, mo: MultidimensionalObject) -> None:
        self._mo = mo
        # share the MO-attached index so closures built here also serve
        # the algebra and query layers (and vice versa)
        self._index = mo.rollup_index()
        self._store: Dict[Tuple[Tuple[Tuple[str, str], ...], str],
                          MaterializedAggregate] = {}

    @property
    def mo(self) -> MultidimensionalObject:
        """The base MO."""
        return self._mo

    @staticmethod
    def _key(grouping: Dict[str, str],
             function: AggregationFunction) -> Tuple[Tuple[Tuple[str, str], ...], str]:
        return tuple(sorted(grouping.items())), function.name

    def _verdict(self, grouping: Dict[str, str],
                 distributive: bool) -> SummarizabilityCheck:
        """The Lenz-Shoshani verdict for a grouping, from the rollup
        index's version-keyed cache: repeated reuse decisions do not
        re-scan the base data, yet a mutated dimension is re-checked."""
        return self._index.summarizability(grouping, distributive)

    def summarizability(self, grouping: Dict[str, str],
                        distributive: bool) -> SummarizabilityCheck:
        """The cached Lenz-Shoshani verdict for a grouping — exposed so
        the cube builder can judge cuboids without materializing them."""
        return self._verdict(grouping, distributive)

    def _stamp(self) -> VersionStamp:
        """The MO's current mutation-counter state, recorded on each
        materialization and re-checked before any reuse."""
        mo = self._mo
        return (
            mo.facts_version,
            tuple(
                (name, mo.dimension(name).order.version,
                 mo.relation(name).version)
                for name in mo.dimension_names
            ),
        )

    def _is_fresh(self, stored: MaterializedAggregate) -> bool:
        return stored.versions == self._stamp()

    def materialize(self, function: AggregationFunction,
                    grouping: Dict[str, str]) -> MaterializedAggregate:
        """Compute and store the aggregate at the given grouping levels
        (single- or multi-dimension), straight from the base data via
        the rollup index."""
        _MATERIALIZE.inc()
        with trace.span("preagg.materialize",
                        grouping=tuple(sorted(grouping.items())),
                        function=function.name):
            stamp = self._stamp()
            maps = {
                name: self._index.characterization_map(name, cat)
                for name, cat in grouping.items()
            }
            groups: Dict[GroupKey, Set[Fact]] = {}
            names = sorted(grouping)
            if names:
                for combo, facts in self._expand(names, maps):
                    if facts:
                        groups[combo] = facts
            elif self._mo.facts:
                # a fact-less MO has no grand-total group, matching the
                # α path, which produces no result fact either
                groups[()] = set(self._mo.facts)
            results = {
                combo: function.apply(facts, self._mo)
                for combo, facts in groups.items()
            }
            verdict = self._verdict(grouping, function.distributive)
        materialized = MaterializedAggregate(
            grouping=dict(grouping),
            function_name=function.name,
            results=results,
            groups=groups,
            summarizability=verdict,
            versions=stamp,
        )
        self._store[self._key(grouping, function)] = materialized
        return materialized

    def _expand(self, names, maps):
        """All value combinations with their intersected fact sets."""

        def rec(i: int, prefix: GroupKey, facts: Optional[Set[Fact]]):
            if i == len(names):
                yield prefix, facts if facts is not None else set()
                return
            for value, value_facts in maps[names[i]].items():
                joined = (set(value_facts) if facts is None
                          else facts & value_facts)
                if not joined:
                    continue
                yield from rec(i + 1, prefix + (value,), joined)

        yield from rec(0, (), None)

    def get(self, function: AggregationFunction,
            grouping: Dict[str, str]) -> Optional[MaterializedAggregate]:
        """A previously materialized aggregate, if any — only while its
        version stamp still matches the MO (a mutation since
        materialization evicts the entry instead of serving stale
        results)."""
        key = self._key(grouping, function)
        stored = self._store.get(key)
        if stored is None:
            return None
        if not self._is_fresh(stored):
            del self._store[key]
            _STALE_EVICTED.inc()
            return None
        return stored

    def entries(self):
        """Iterate ``(grouping dict, function name, materialized)`` for
        every stored aggregate that is still fresh; stale entries are
        evicted, not yielded."""
        stamp = self._stamp()
        stale = [key for key, stored in self._store.items()
                 if stored.versions != stamp]
        for key in stale:
            del self._store[key]
            _STALE_EVICTED.inc()
        for (grouping_key, function_name), stored in list(self._store.items()):
            yield dict(grouping_key), function_name, stored

    def can_roll_up(
        self,
        stored: MaterializedAggregate,
        function: AggregationFunction,
        target_grouping: Dict[str, str],
    ) -> bool:
        """Whether ``stored`` may be combined into the coarser
        ``target_grouping``: the stored aggregate must still be fresh
        and have been summarizable, the function distributive, the
        target must be coarser in every dimension, the hierarchy between
        stored and target levels strict and partitioning (re-checked at
        the target levels), and the fact characterizations at the stored
        level many-to-one onto the target's visible facts (see
        :meth:`_stored_level_covers`)."""
        if not self._is_fresh(stored):
            return False
        if not stored.summarizability.summarizable:
            return False
        if not function.distributive:
            return False
        if set(target_grouping) != set(stored.grouping):
            return False
        for name, target_cat in target_grouping.items():
            dtype = self._mo.dimension(name).dtype
            if not dtype.leq(stored.grouping[name], target_cat):
                return False
        target_verdict = self._verdict(target_grouping,
                                       function.distributive)
        if not target_verdict.summarizable:
            return False
        if not self._stored_level_covers(stored.grouping, target_grouping):
            _COVERAGE_REFUSED.inc()
            return False
        return True

    def _stored_level_covers(self, stored_grouping: Dict[str, str],
                             target_grouping: Dict[str, str]) -> bool:
        """The summarizability condition the paper leaves implicit: the
        fact characterizations at the *stored* level must be many-to-one
        onto the facts visible at the target level — every fact
        characterized at the target category characterized by exactly
        one stored-category value.

        Without it, combining stored results miscounts under mixed
        granularity: a fact recorded only at a coarse value (an
        imprecise fact) appears in the direct target-level grouping but
        in no stored fine-level group, so the combined result silently
        loses it; a fact under two stored siblings would conversely be
        counted twice.  Both per-fact maps come from the rollup index's
        per-category cache, so repeated checks do not re-scan the data.
        """
        index = self._index
        for name, stored_cat in stored_grouping.items():
            target_cat = target_grouping[name]
            if stored_cat == target_cat:
                continue
            stored_map = index.grouping_values_per_fact(name, stored_cat)
            target_map = index.grouping_values_per_fact(name, target_cat)
            for fact in target_map:
                stored_values = stored_map.get(fact)
                if stored_values is None or len(stored_values) != 1:
                    return False
        return True

    def roll_up(
        self,
        function: AggregationFunction,
        source_grouping: Dict[str, str],
        target_grouping: Dict[str, str],
    ) -> Dict[GroupKey, object]:
        """Answer a coarser aggregate by combining a stored finer one.

        Raises :class:`AlgebraError` when reuse is unsafe (the paper's
        "we have to pre-compute the total results ... while other
        aggregates must be computed from the base data").
        """
        stored = self.get(function, source_grouping)
        if stored is None:
            raise AlgebraError(
                f"no materialized aggregate at {source_grouping!r}"
            )
        if not self.can_roll_up(stored, function, target_grouping):
            _REFUSE.inc()
            reason = stored.summarizability.explain()
            if stored.summarizability.summarizable:
                reason = ("stored-level fact characterizations are not "
                          "many-to-one onto the target level (mixed "
                          "granularity or many-to-many), or the target "
                          "level is itself not summarizable")
            raise AlgebraError(
                f"cannot combine {source_grouping!r} into "
                f"{target_grouping!r}: {reason}"
            )
        _REUSE.inc()
        with trace.span("preagg.roll_up",
                        source=tuple(sorted(source_grouping.items())),
                        target=tuple(sorted(target_grouping.items()))):
            partials: Dict[GroupKey, list] = {}
            for combo, result in stored.results.items():
                target_combo = []
                ok = True
                for name, value in zip(sorted(stored.grouping), combo):
                    parent = self._parent_in(name, value,
                                             target_grouping[name])
                    if parent is None:
                        ok = False
                        break
                    target_combo.append(parent)
                if ok:
                    partials.setdefault(tuple(target_combo), []).append(result)
            return {
                combo: function.combine(values)
                for combo, values in partials.items()
            }

    def _parent_in(self, dimension_name: str, value: DimensionValue,
                   category_name: str) -> Optional[DimensionValue]:
        dimension = self._mo.dimension(dimension_name)
        if dimension.category_name_of(value) == category_name:
            return value
        category = dimension.category(category_name)
        for ancestor in dimension.ancestors(value, reflexive=False):
            if ancestor in category:
                return ancestor
        return None

    def compute_from_base(
        self,
        function: AggregationFunction,
        grouping: Dict[str, str],
    ) -> Dict[GroupKey, object]:
        """The fallback: evaluate directly against the base data (used
        when reuse is refused; the benchmarks compare its cost with
        :meth:`roll_up`)."""
        return self.materialize(function, grouping).results
