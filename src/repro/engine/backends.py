"""Pluggable execution backends for :class:`~repro.engine.query.Query`.

A backend is one way to answer a query — the in-process store → index →
α ladder, the SQL star-schema pushdown, or the parallel sharded
executor (:mod:`repro.engine.sharded`).  :class:`ExecutionBackend` is
the protocol; a process-wide locked registry maps names to instances so
``Query.execute(backend="sql")`` resolves without any string dispatch
in the query layer itself.

The protocol splits a backend's answer into three hooks:

* :meth:`ExecutionBackend.plan_for` — the algebra plan the backend
  inspects and executes (``None`` for backends that work straight off
  the query, keeping the memory hot path plan-free);
* :meth:`ExecutionBackend.supports` — ``None`` when the backend can
  answer the plan *exactly*, otherwise the analyzer
  :class:`~repro.analyze.diagnostics.Diagnostic` naming why not;
* :meth:`ExecutionBackend.run` — produce the rows (and the
  ``explain().path`` label), appending per-step timings when asked.

:func:`dispatch` is the one driver above every backend: it asks
``supports`` first and, on a refusal, either falls through to the
backend's declared :attr:`~ExecutionBackend.fallback` (recording a
``<name>-fallback`` explain step and bumping the backend's fallback
counter — the SQL backend's ``PushdownUnsupported`` fallback is this
mechanism) or raises :class:`BackendRefused` carrying the diagnostic.
The result cache, ``check=``, and explain plumbing stay in
:class:`~repro.engine.query.Query`, once, above all backends.

Registering a backend::

    from repro.engine.backends import ExecutionBackend, register_backend

    class MyBackend(ExecutionBackend):
        name = "mine"

        def run(self, query, plan, function, strict_types, steps):
            ...
            return rows, self.name

    register_backend(MyBackend())

``tools/lint_invariants.py`` rule 7 checks that every
:class:`ExecutionBackend` subclass implements the full protocol surface
and that registry mutations stay under :data:`_REGISTRY_LOCK`.
"""

from __future__ import annotations

import importlib
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.algebra.functions import AggregationFunction
from repro.obs import metrics, trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.diagnostics import Diagnostic
    from repro.engine.query import ExplainStep, Query, QueryResultRow

__all__ = [
    "BackendRefused",
    "ExecutionBackend",
    "MemoryBackend",
    "SqlExecutionBackend",
    "backend_named",
    "dispatch",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

_PATH_SQL = metrics.counter("query.path.sql")


class BackendRefused(Exception):
    """An execution backend declined a plan it cannot answer exactly.

    Carries the :class:`~repro.analyze.diagnostics.Diagnostic` naming
    the reason — for the sharded executor this is the very MD07x
    finding :func:`repro.analyze.analyze_shardability` predicts.  Only
    surfaces to callers when the refusing backend declares no
    :attr:`~ExecutionBackend.fallback`; backends with one fall through
    silently (counted, and visible as an explain step).
    """

    def __init__(self, diagnostic: "Diagnostic") -> None:
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic


class ExecutionBackend:
    """One way to answer a :class:`~repro.engine.query.Query`.

    Subclasses must set :attr:`name` and implement :meth:`run`; they
    may override :meth:`plan_for` and :meth:`supports` to take part in
    the generic refusal → fallback mechanism of :func:`dispatch`.
    """

    #: registry key, ``Query.execute(backend=...)`` vocabulary entry,
    #: and the ``explain().path`` label family.
    name: str = ""

    #: registry name of the backend that answers plans this one
    #: refuses; ``None`` makes a refusal raise :class:`BackendRefused`.
    fallback: Optional[str] = None

    #: counter bumped once per refusal-triggered fallback.
    fallback_counter: str = "query.backend.fallback"

    def plan_for(self, query: "Query", function: AggregationFunction,
                 strict_types: bool):
        """The algebra plan :meth:`supports` inspects and :meth:`run`
        executes.  The base returns ``None``: backends that evaluate
        straight off the query (the memory ladder) skip plan
        construction entirely on the hot path."""
        return None

    def supports(self, query: "Query", plan) -> Optional["Diagnostic"]:
        """``None`` when this backend can answer the plan exactly;
        otherwise the diagnostic naming why not.  Must not mutate the
        query; may cache work for :meth:`run` (the SQL backend compiles
        here, once)."""
        return None

    def run(self, query: "Query", plan,
            function: AggregationFunction, strict_types: bool,
            steps: Optional[List["ExplainStep"]],
            ) -> Tuple[List["QueryResultRow"], str]:
        """Answer the query: ``(rows, path label)``.  May raise
        :class:`BackendRefused` as a runtime backstop for conditions
        :meth:`supports` cannot see statically; :func:`dispatch`
        handles it exactly like a ``supports`` refusal."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement run()")


#: name → instance; every mutation must hold :data:`_REGISTRY_LOCK`
#: (``tools/lint_invariants.py`` rule 6 enforces the discipline).
_REGISTRY: Dict[str, ExecutionBackend] = {}
_REGISTRY_LOCK = threading.Lock()

#: backends registered on first use — the sharded executor pulls in the
#: analyzer package, which (via the SQL pushdown analysis) imports the
#: query layer, so eagerly importing it here would be circular.  The
#: named module registers itself at import time.
_LAZY_MODULES: Dict[str, str] = {"sharded": "repro.engine.sharded"}


def register_backend(backend: ExecutionBackend,
                     replace: bool = False) -> ExecutionBackend:
    """Add a backend to the process-wide registry under its
    :attr:`~ExecutionBackend.name`.  Re-registering the same instance
    is a no-op; replacing a different instance requires ``replace=True``
    so two libraries cannot silently fight over a name."""
    name = backend.name
    if not name:
        raise ValueError(
            f"{type(backend).__name__} must declare a non-empty name")
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not backend and not replace:
            raise ValueError(
                f"backend {name!r} is already registered "
                f"({type(existing).__name__}); pass replace=True to "
                f"override")
        _REGISTRY[name] = backend
    return backend


def registered_backends() -> Tuple[str, ...]:
    """The sorted names ``backend_named`` resolves, including backends
    that register lazily on first use."""
    with _REGISTRY_LOCK:
        names = set(_REGISTRY)
    return tuple(sorted(names | set(_LAZY_MODULES)))


def backend_named(name: str) -> ExecutionBackend:
    """The registered backend behind a name — the single source of
    truth for ``Query.execute``'s and ``Query.explain``'s ``backend=``
    argument (both used to duplicate this validation)."""
    with _REGISTRY_LOCK:
        found = _REGISTRY.get(name)
    if found is None and name in _LAZY_MODULES:
        importlib.import_module(_LAZY_MODULES[name])
        with _REGISTRY_LOCK:
            found = _REGISTRY.get(name)
    if found is None:
        known = ", ".join(repr(n) for n in registered_backends())
        raise ValueError(
            f"unknown backend {name!r} (registered backends: {known})")
    return found


def resolve_backend(
        backend: Union[str, ExecutionBackend]) -> ExecutionBackend:
    """A registry name or a ready instance, to the instance — letting
    callers pass configured backends (``ShardedBackend(n_shards=4)``)
    without touching the global registry."""
    if isinstance(backend, ExecutionBackend):
        return backend
    return backend_named(backend)


def dispatch(query: "Query", backend: ExecutionBackend,
             function: AggregationFunction, strict_types: bool,
             steps: Optional[List["ExplainStep"]],
             ) -> Tuple[List["QueryResultRow"], str]:
    """Run one backend with the generic refusal → fallback protocol.

    ``supports`` gates ``run``; a refusal (static, or a
    :class:`BackendRefused` raised from ``run`` as a runtime backstop)
    either falls through to the backend's declared fallback — counting
    it on the backend's :attr:`~ExecutionBackend.fallback_counter` and
    recording a ``<name>-fallback`` explain step with the diagnostic —
    or propagates as :class:`BackendRefused`.
    """
    plan = backend.plan_for(query, function, strict_types)
    t0 = time.perf_counter()
    refusal = backend.supports(query, plan)
    if refusal is None:
        try:
            return backend.run(query, plan, function, strict_types, steps)
        except BackendRefused as exc:
            refusal = exc.diagnostic
    if backend.fallback is None:
        raise BackendRefused(refusal)
    metrics.counter(backend.fallback_counter).inc()
    if steps is not None:
        from repro.engine.query import ExplainStep
        steps.append(ExplainStep(
            name=f"{backend.name}-fallback",
            detail=f"{refusal.code} at {refusal.location}: "
                   f"{refusal.message}",
            elapsed_seconds=time.perf_counter() - t0,
            facts_in=0, facts_out=0))
    return dispatch(query, backend_named(backend.fallback),
                    function, strict_types, steps)


class MemoryBackend(ExecutionBackend):
    """The in-process answer ladder: pre-aggregate store, then the
    rollup-index fast path, then full α — all owned by
    :meth:`Query._run`; this class is the protocol adapter around it.
    Supports every plan (it *is* the semantics the other backends are
    byte-identical to), so :meth:`supports` never refuses."""

    name = "memory"

    def run(self, query: "Query", plan,
            function: AggregationFunction, strict_types: bool,
            steps: Optional[List["ExplainStep"]],
            ) -> Tuple[List["QueryResultRow"], str]:
        return query._run(function, strict_types, steps)


class SqlExecutionBackend(ExecutionBackend):
    """The relational pushdown (:mod:`repro.relational.backend`) behind
    the protocol.  :meth:`supports` compiles the plan — exactly once,
    stashing the compilation for :meth:`run` — and converts
    :class:`~repro.relational.backend.PushdownUnsupported` into the
    MD05x refusal diagnostic, which :func:`dispatch` turns into the
    ``sql-fallback`` explain step and ``sql.pushdown.fallback`` count
    the bespoke ``Query._run_sql`` used to produce."""

    name = "sql"
    fallback = "memory"
    fallback_counter = "sql.pushdown.fallback"

    def __init__(self) -> None:
        # id(plan) → (sql backend, compiled plan, compile seconds);
        # written by supports(), popped by run() on the same plan object
        # within one dispatch — entries never outlive a dispatch.
        self._compiled: Dict[int, tuple] = {}

    def plan_for(self, query: "Query", function: AggregationFunction,
                 strict_types: bool):
        # the single-conjunction σ shape _diced_mo() evaluates — see
        # Query._sql_plan for why this differs from to_plan()
        return query._sql_plan(function, strict_types)

    def _compile(self, query: "Query", plan):
        """``(backend, compiled, seconds)`` or the refusal diagnostic."""
        from repro.relational.backend import (
            PushdownUnsupported,
            sql_backend_for,
        )
        backend = sql_backend_for(query._mo)
        t0 = time.perf_counter()
        try:
            compiled = backend.compile(plan)
        except PushdownUnsupported as exc:
            from repro.analyze.diagnostics import CATALOG, Diagnostic
            severity, _meaning = CATALOG[exc.code]
            return Diagnostic(code=exc.code, severity=severity,
                              message=exc.reason, location=exc.location)
        return (backend, compiled, time.perf_counter() - t0)

    def supports(self, query: "Query", plan) -> Optional["Diagnostic"]:
        outcome = self._compile(query, plan)
        if isinstance(outcome, tuple):
            self._compiled[id(plan)] = outcome
            return None
        return outcome

    def run(self, query: "Query", plan,
            function: AggregationFunction, strict_types: bool,
            steps: Optional[List["ExplainStep"]],
            ) -> Tuple[List["QueryResultRow"], str]:
        from repro.engine.query import ExplainStep
        entry = self._compiled.pop(id(plan), None)
        if entry is None:  # run() without a prior supports() pass
            entry = self._compile(query, plan)
            if not isinstance(entry, tuple):
                raise BackendRefused(entry)
        backend, compiled, compile_elapsed = entry
        with trace.span("query.execute",
                        grouping=tuple(sorted(query._grouping)),
                        n_dices=len(query._dices),
                        function=function.name, backend="sql"):
            if steps is not None:
                for node in compiled.nodes:
                    steps.append(ExplainStep(
                        name=f"sql[{node.label}]", detail=node.sql,
                        elapsed_seconds=0.0, facts_in=0, facts_out=0))
                steps[-len(compiled.nodes)].elapsed_seconds = \
                    compile_elapsed
            t1 = time.perf_counter()
            rows = backend.run_rows(compiled)
            _PATH_SQL.inc()
            if steps is not None:
                steps.append(ExplainStep(
                    name="sql-execute",
                    detail=f"engine={backend.engine}",
                    elapsed_seconds=time.perf_counter() - t1,
                    facts_in=len(query._mo.facts), facts_out=len(rows)))
            return rows, "sql"


register_backend(MemoryBackend())
register_backend(SqlExecutionBackend())
