"""Canonical fingerprints of optimizer plans (the result-cache key).

Two plans that denote the same result should hit the same cache entry
(the algebraic-equivalence treatment of Romero et al. and the OLAP
rewrites of Ravat/Teste/Zurfluh argue exactly this for σ/π/ρ-commuted
plans), so the fingerprint is computed over a *canonical form* of the
plan, not its surface syntax:

* **σ conjuncts are flattened, deduplicated, and sorted** — the
  evaluator tests a conjunction with ``all()`` over one shared witness
  tuple, so operand order and repeats cannot change the result;
* **chains of σ nodes are sorted** — selection restricts every
  fact-dimension relation to the surviving facts *with their full
  value sets*, so adjacent σs commute (they are **not** fused into one
  conjunction: a single conjunction re-uses one witness across its
  conjuncts, which chained σs re-quantify per node — a real semantic
  difference for several dices on one dimension);
* **ρ chains are composed** into a single rename map with identity
  entries dropped (and the node elided entirely when nothing remains);
* **∪ operands are flattened and sorted** — union is associative and
  commutative; ``\\`` and ``⋈`` keep operand order;
* **values are serialized via** :func:`~repro.relational.star.encode_sid`
  — the collision-free tagged encoding (``repr`` was not injective
  across surrogate types: ``"(1, 2)"`` vs ``(1, 2)``).

Every atom of the canonical text is escaped, so structurally different
plans cannot collide by concatenation; the digest is SHA-256 over the
canonical text.  Base leaves embed a per-MO token from a monotonic
counter held weakly — tokens are never reused, so a fingerprint can
never outlive its MO into a colliding successor.

Plans whose predicates or functions are *opaque* (an arbitrary Python
callable the canonicalizer cannot inspect) raise
:class:`Unfingerprintable`; the query layer counts these as
``query.cache.bypass`` and :func:`repro.analyze.analyze_cacheability`
reports them as ``MD060``.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algebra.functions import AggregationFunction
from repro.algebra.predicates import Predicate
from repro.core.mo import MultidimensionalObject
from repro.engine.optimizer import (
    AggregateNode,
    Base,
    DifferenceNode,
    JoinNode,
    Plan,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
)
__all__ = ["PlanFingerprint", "Unfingerprintable", "fingerprint",
           "mo_token"]


class Unfingerprintable(Exception):
    """The plan contains a construct the canonicalizer cannot serialize
    faithfully (an opaque predicate, a user-defined aggregation
    function): caching it would risk keying distinct computations
    identically, so the query layer bypasses the cache instead.

    ``payload`` carries the offending construct itself (the predicate
    or function object) when one exists, so diagnostics — the ``MD060``
    cacheability pass in particular — can name it and run the purity
    analysis over its callable instead of reporting a bare
    "unfingerprintable"."""

    def __init__(self, reason: str, location: str,
                 payload: object = None) -> None:
        super().__init__(f"{reason} at {location}")
        self.reason = reason
        self.location = location
        self.payload = payload


_TOKENS: "weakref.WeakKeyDictionary[MultidimensionalObject, int]" = \
    weakref.WeakKeyDictionary()
_NEXT_TOKEN = itertools.count()
_TOKEN_LOCK = threading.Lock()


def mo_token(mo: MultidimensionalObject) -> int:
    """A process-unique integer identifying ``mo`` for fingerprinting.

    Unlike ``id(mo)``, tokens come from a monotonic counter and are
    never reused: a fingerprint computed against a garbage-collected MO
    can never collide with a later MO that happens to occupy the same
    address."""
    token = _TOKENS.get(mo)
    if token is None:
        with _TOKEN_LOCK:
            token = _TOKENS.get(mo)
            if token is None:
                token = next(_NEXT_TOKEN)
                _TOKENS[mo] = token
    return token


def _atom(text: str) -> str:
    """Escape an atom so list structure cannot be forged by content."""
    return (text.replace("\\", "\\\\").replace("(", "\\(")
            .replace(")", "\\)").replace(" ", "\\_"))


def _sexp(*parts: str) -> str:
    return "(" + " ".join(parts) + ")"


def _value_atom(value) -> str:
    """A DimensionValue by its equality fields (sid, is_top) — label is
    a debugging aid excluded from equality, so it is excluded here."""
    # imported lazily: repro.relational's package init imports the SQL
    # backend, which imports repro.engine.query, which imports this
    # module — a top-level import here would close that cycle
    from repro.relational.star import encode_sid
    return _atom(f"{int(value.is_top)}|{encode_sid(value.sid)}")


def _canonical_predicate(predicate: Predicate, location: str) -> List[str]:
    """The predicate as a sorted, deduplicated list of canonical
    conjunct strings (a conjunction is its flattened operand list; a
    simple predicate is a one-element list)."""
    if predicate.kind == "characterized_by":
        name, value = predicate.payload
        return [_sexp("cb", _atom(name), _value_atom(value))]
    if predicate.kind == "conjunction":
        conjuncts: List[str] = []
        for operand in predicate.payload:
            conjuncts.extend(_canonical_predicate(operand, location))
        return sorted(set(conjuncts))
    raise Unfingerprintable(
        f"predicate {predicate.description!r} is opaque "
        f"(kind={predicate.kind!r})", location, payload=predicate)


def _canonical_function(function: AggregationFunction,
                        location: str) -> str:
    """Builtin functions serialize by type and argument dimensions;
    anything user-defined is opaque (its behaviour is a Python callable
    the canonicalizer cannot compare)."""
    if type(function).__module__ != "repro.algebra.functions":
        raise Unfingerprintable(
            f"user-defined aggregation function {function.name!r}",
            location, payload=function)
    args = tuple(getattr(function, "args", ()))
    return _sexp("fn", _atom(type(function).__name__),
                 *[_atom(a) for a in args])


def _compose_renames(nodes: List[RenameNode]) -> Tuple[str, ...]:
    """Compose a ρ chain (innermost first) into one sorted rename list
    plus the winning fact type; identity entries are dropped."""
    composed: Dict[str, str] = {}
    fact_type = None
    for node in nodes:  # innermost first
        mapping = dict(node.dimension_map)
        renamed = {}
        for old, mid in composed.items():
            renamed[old] = mapping.get(mid, mid)
        for old, new in mapping.items():
            if old not in composed.values():
                renamed.setdefault(old, new)
        composed = renamed
        if node.new_fact_type is not None:
            fact_type = node.new_fact_type
    entries = tuple(sorted(
        f"{old}>{new}" for old, new in composed.items() if old != new))
    parts = []
    if fact_type is not None:
        parts.append(_sexp("ftype", _atom(fact_type)))
    parts.extend(_atom(e) for e in entries)
    return tuple(parts)


class _Canonicalizer:
    """One fingerprint computation: serializes the plan bottom-up and
    collects the Base MOs (the version-vector subjects)."""

    def __init__(self) -> None:
        self.mos: Dict[int, MultidimensionalObject] = {}

    def serialize(self, plan: Plan, location: str = "plan") -> str:
        if isinstance(plan, Base):
            token = mo_token(plan.mo)
            self.mos[token] = plan.mo
            return _sexp("base", str(token))
        if isinstance(plan, SelectNode):
            # collect the σ chain; adjacent σs commute, so sort their
            # canonical predicate strings (each node keeps its own
            # conjunct list — no cross-node fusion)
            chain: List[str] = []
            node: Plan = plan
            while isinstance(node, SelectNode):
                conjuncts = _canonical_predicate(
                    node.predicate, f"{location}: σ")
                chain.append(_sexp("pred", *conjuncts))
                node = node.child
            child = self.serialize(node, location + ".child")
            return _sexp("select", *sorted(set(chain)), child)
        if isinstance(plan, ProjectNode):
            child = self.serialize(plan.child, location + ".child")
            return _sexp("project",
                         *[_atom(d) for d in plan.dimensions], child)
        if isinstance(plan, RenameNode):
            nodes: List[RenameNode] = []
            node = plan
            while isinstance(node, RenameNode):
                nodes.append(node)
                node = node.child
            nodes.reverse()  # innermost first
            child = self.serialize(node, location + ".child")
            parts = _compose_renames(nodes)
            if not parts:
                return child  # the whole chain is an identity
            return _sexp("rename", *parts, child)
        if isinstance(plan, UnionNode):
            operands: List[str] = []
            stack: List[Plan] = [plan]
            while stack:
                node = stack.pop()
                if isinstance(node, UnionNode):
                    stack.append(node.left)
                    stack.append(node.right)
                else:
                    operands.append(
                        self.serialize(node, location + ".operand"))
            return _sexp("union", *sorted(operands))
        if isinstance(plan, DifferenceNode):
            return _sexp(
                "difference",
                self.serialize(plan.left, location + ".left"),
                self.serialize(plan.right, location + ".right"))
        if isinstance(plan, JoinNode):
            return _sexp(
                "join", _atom(plan.predicate.value),
                self.serialize(plan.left, location + ".left"),
                self.serialize(plan.right, location + ".right"))
        if isinstance(plan, AggregateNode):
            grouping = [_atom(f"{dim}@{cat}")
                        for dim, cat in sorted(plan.grouping)]
            return _sexp(
                "aggregate",
                _canonical_function(plan.function, f"{location}: α"),
                _sexp("by", *grouping),
                _atom(f"strict={int(plan.strict_types)}"),
                _atom(f"result={plan.result.name}"),
                self.serialize(plan.child, location + ".child"))
        raise Unfingerprintable(f"unknown plan node {type(plan).__name__}",
                                location)


@dataclass(frozen=True)
class PlanFingerprint:
    """A canonical plan identity: the SHA-256 digest of the canonical
    text, the text itself (for explain output and debugging), and the
    Base MOs in token order (the subjects whose version vectors key the
    result cache alongside the digest)."""

    digest: str
    text: str
    mos: Tuple[MultidimensionalObject, ...]

    @property
    def short(self) -> str:
        """The first 12 digest hex chars (explain-step display)."""
        return self.digest[:12]


def fingerprint(plan: Plan) -> PlanFingerprint:
    """The canonical fingerprint of ``plan``.

    Algebraically-equal plans (commuted σ chains, shuffled conjuncts,
    composed ρ chains, reordered ∪ operands) produce equal digests;
    distinct plans — including plans over surrogates whose ``repr``
    collides — produce distinct ones.  Raises
    :class:`Unfingerprintable` for opaque predicates or user-defined
    aggregation functions."""
    canonicalizer = _Canonicalizer()
    text = canonicalizer.serialize(plan)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    mos = tuple(mo for _token, mo in sorted(canonicalizer.mos.items()))
    return PlanFingerprint(digest=digest, text=text, mos=mos)
