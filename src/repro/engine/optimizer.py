"""A small algebraic plan optimizer (paper §5 future work).

Queries over MOs compose the fundamental operators; like relational
engines, a multidimensional engine benefits from rewriting the operator
tree before evaluation.  This module defines a tiny logical plan
language over one base MO —

* :class:`Base` — the input MO;
* :class:`SelectNode` — σ with a predicate;
* :class:`ProjectNode` — π onto dimensions —

plus an :func:`optimize` pass applying the classical, *provably
equivalence-preserving* rewrites in this algebra:

1. **select fusion**: σ[p](σ[q](X)) → σ[p ∧ q](X), applied only when
   p and q constrain the *same* dimensions: the evaluator witnesses a
   predicate over the product of its dimensions' candidate values, so
   fusing predicates over different dimensions would multiply the
   candidate sets (measured as a slowdown in
   ``benchmarks/bench_optimizer.py``), while same-dimension fusion
   replaces two passes — each of which also restricts every
   fact-dimension relation — with one;
2. **project fusion**: π[A](π[B](X)) → π[A](X) (projection keeps facts,
   so only the outermost dimension list matters);
3. **select-past-project**: π[A](σ[p](X)) ↔ σ[p](π[A](X)); the
   optimizer normalizes to *select first* when p's dimensions are kept
   by A — σ shrinks the fact set, so later π copies less — and must
   keep σ inside when p touches projected-away dimensions (in this
   algebra that order is *required* for meaning, not just speed).

Equivalence of optimized and naive plans is property-tested in
``tests/engine/test_optimizer.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Tuple, Union

from repro.algebra import conjunction, project, select
from repro.algebra.predicates import Predicate
from repro.core.mo import MultidimensionalObject
from repro.obs import metrics, trace

__all__ = ["Base", "SelectNode", "ProjectNode", "Plan", "evaluate",
           "optimize", "explain", "AnalyzedNode", "AnalyzedPlan",
           "explain_analyze"]

_REWRITES = metrics.counter("optimizer.rewrite_passes")


@dataclass(frozen=True)
class Base:
    """The plan leaf: the input MO."""

    mo: MultidimensionalObject


@dataclass(frozen=True)
class SelectNode:
    """σ[predicate] over a child plan."""

    child: "Plan"
    predicate: Predicate


@dataclass(frozen=True)
class ProjectNode:
    """π[dimensions] over a child plan."""

    child: "Plan"
    dimensions: Tuple[str, ...]


Plan = Union[Base, SelectNode, ProjectNode]


def evaluate(plan: Plan) -> MultidimensionalObject:
    """Evaluate a plan bottom-up with the algebra's operators."""
    if isinstance(plan, Base):
        return plan.mo
    if isinstance(plan, SelectNode):
        return select(evaluate(plan.child), plan.predicate)
    if isinstance(plan, ProjectNode):
        return project(evaluate(plan.child), list(plan.dimensions))
    raise TypeError(f"unknown plan node {plan!r}")


def optimize(plan: Plan) -> Plan:
    """Apply the rewrites until a fixpoint.

    The result is semantically equivalent to the input: select fusion
    and project fusion are identities of the algebra, and
    select-past-project is applied only when the predicate's dimensions
    survive the projection.
    """
    current = plan
    while True:
        rewritten = _rewrite(current)
        if rewritten == current:
            return current
        _REWRITES.inc()
        current = rewritten


def _rewrite(plan: Plan) -> Plan:
    if isinstance(plan, Base):
        return plan
    if isinstance(plan, SelectNode):
        child = _rewrite(plan.child)
        # select fusion — only for same-dimension predicates (fusing
        # across dimensions multiplies the candidate sets the evaluator
        # must witness)
        if isinstance(child, SelectNode) and \
                set(child.predicate.dims) == set(plan.predicate.dims):
            fused = conjunction(child.predicate, plan.predicate)
            return SelectNode(child=child.child, predicate=fused)
        # push select below project when its dimensions survive
        if isinstance(child, ProjectNode) and \
                set(plan.predicate.dims) <= set(child.dimensions):
            return ProjectNode(
                child=SelectNode(child=child.child,
                                 predicate=plan.predicate),
                dimensions=child.dimensions,
            )
        return SelectNode(child=child, predicate=plan.predicate)
    if isinstance(plan, ProjectNode):
        child = _rewrite(plan.child)
        # project fusion: inner projection is redundant if it keeps a
        # superset of the outer one (projection never drops facts)
        if isinstance(child, ProjectNode) and \
                set(plan.dimensions) <= set(child.dimensions):
            return ProjectNode(child=child.child,
                               dimensions=plan.dimensions)
        return ProjectNode(child=child, dimensions=plan.dimensions)
    raise TypeError(f"unknown plan node {plan!r}")


def explain(plan: Plan, indent: int = 0) -> str:
    """A one-line-per-node rendering of the plan tree."""
    pad = "  " * indent
    if isinstance(plan, Base):
        return f"{pad}Base({plan.mo.schema.fact_type})"
    if isinstance(plan, SelectNode):
        return (f"{pad}σ[{plan.predicate.description}]\n"
                + explain(plan.child, indent + 1))
    if isinstance(plan, ProjectNode):
        return (f"{pad}π[{', '.join(plan.dimensions)}]\n"
                + explain(plan.child, indent + 1))
    raise TypeError(f"unknown plan node {plan!r}")


@dataclass(frozen=True)
class AnalyzedNode:
    """One evaluated plan node with its measurements.

    ``elapsed_seconds`` is *inclusive* wall time (this node plus its
    subtree, as in PostgreSQL's actual-time column); ``facts_in`` is
    the child's output fact count (its own output for :class:`Base`),
    ``facts_out`` this node's.
    """

    label: str
    elapsed_seconds: float
    facts_in: int
    facts_out: int
    children: Tuple["AnalyzedNode", ...] = ()

    @property
    def self_seconds(self) -> float:
        """This node's own time (inclusive minus children)."""
        return max(
            0.0,
            self.elapsed_seconds
            - sum(c.elapsed_seconds for c in self.children),
        )

    def render(self, indent: int = 0) -> str:
        """This subtree, one annotated line per node."""
        pad = "  " * indent
        line = (f"{pad}{self.label}  facts {self.facts_in} -> "
                f"{self.facts_out}  {self.elapsed_seconds * 1e3:.3f}ms")
        parts = [line]
        parts.extend(c.render(indent + 1) for c in self.children)
        return "\n".join(parts)


@dataclass(frozen=True)
class AnalyzedPlan:
    """An evaluated plan: the result MO plus the annotated node tree
    (the plan-level EXPLAIN ANALYZE)."""

    root: AnalyzedNode
    mo: MultidimensionalObject

    @property
    def total_seconds(self) -> float:
        """Total evaluation wall time (the root's inclusive time)."""
        return self.root.elapsed_seconds

    def render(self) -> str:
        """The annotated tree as text."""
        return self.root.render()


def explain_analyze(plan: Plan) -> AnalyzedPlan:
    """Evaluate ``plan`` bottom-up, annotating every node with elapsed
    wall time and in/out fact counts — the plan-level counterpart of
    :meth:`repro.engine.query.Query.explain`.

    The evaluation is the real one (same operators as
    :func:`evaluate`); the returned :class:`AnalyzedPlan` carries the
    result MO, so analyzing costs one evaluation, not two.
    """

    def rec(node: Plan) -> Tuple[AnalyzedNode, MultidimensionalObject]:
        t0 = time.perf_counter()
        if isinstance(node, Base):
            mo = node.mo
            analyzed = AnalyzedNode(
                label=f"Base({mo.schema.fact_type})",
                elapsed_seconds=time.perf_counter() - t0,
                facts_in=len(mo.facts), facts_out=len(mo.facts))
            return analyzed, mo
        if isinstance(node, SelectNode):
            child, child_mo = rec(node.child)
            mo = select(child_mo, node.predicate)
            analyzed = AnalyzedNode(
                label=f"σ[{node.predicate.description}]",
                elapsed_seconds=time.perf_counter() - t0,
                facts_in=child.facts_out, facts_out=len(mo.facts),
                children=(child,))
            return analyzed, mo
        if isinstance(node, ProjectNode):
            child, child_mo = rec(node.child)
            mo = project(child_mo, list(node.dimensions))
            analyzed = AnalyzedNode(
                label=f"π[{', '.join(node.dimensions)}]",
                elapsed_seconds=time.perf_counter() - t0,
                facts_in=child.facts_out, facts_out=len(mo.facts),
                children=(child,))
            return analyzed, mo
        raise TypeError(f"unknown plan node {node!r}")

    with trace.span("optimizer.explain_analyze"):
        root, mo = rec(plan)
    return AnalyzedPlan(root=root, mo=mo)
