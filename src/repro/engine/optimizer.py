"""A small algebraic plan optimizer (paper §5 future work).

Queries over MOs compose the fundamental operators; like relational
engines, a multidimensional engine benefits from rewriting the operator
tree before evaluation.  This module defines a tiny logical plan
language over one base MO —

* :class:`Base` — the input MO;
* :class:`SelectNode` — σ with a predicate;
* :class:`ProjectNode` — π onto dimensions —

plus an :func:`optimize` pass applying the classical, *provably
equivalence-preserving* rewrites in this algebra:

1. **select fusion**: σ[p](σ[q](X)) → σ[p ∧ q](X), applied only when
   p and q constrain the *same* dimensions: the evaluator witnesses a
   predicate over the product of its dimensions' candidate values, so
   fusing predicates over different dimensions would multiply the
   candidate sets (measured as a slowdown in
   ``benchmarks/bench_optimizer.py``), while same-dimension fusion
   replaces two passes — each of which also restricts every
   fact-dimension relation — with one;
2. **project fusion**: π[A](π[B](X)) → π[A](X) (projection keeps facts,
   so only the outermost dimension list matters);
3. **select-past-project**: π[A](σ[p](X)) ↔ σ[p](π[A](X)); the
   optimizer normalizes to *select first* when p's dimensions are kept
   by A — σ shrinks the fact set, so later π copies less — and must
   keep σ inside when p touches projected-away dimensions (in this
   algebra that order is *required* for meaning, not just speed).

Equivalence of optimized and naive plans is property-tested in
``tests/engine/test_optimizer.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.algebra import conjunction, project, select
from repro.algebra.predicates import Predicate
from repro.core.mo import MultidimensionalObject

__all__ = ["Base", "SelectNode", "ProjectNode", "Plan", "evaluate",
           "optimize", "explain"]


@dataclass(frozen=True)
class Base:
    """The plan leaf: the input MO."""

    mo: MultidimensionalObject


@dataclass(frozen=True)
class SelectNode:
    """σ[predicate] over a child plan."""

    child: "Plan"
    predicate: Predicate


@dataclass(frozen=True)
class ProjectNode:
    """π[dimensions] over a child plan."""

    child: "Plan"
    dimensions: Tuple[str, ...]


Plan = Union[Base, SelectNode, ProjectNode]


def evaluate(plan: Plan) -> MultidimensionalObject:
    """Evaluate a plan bottom-up with the algebra's operators."""
    if isinstance(plan, Base):
        return plan.mo
    if isinstance(plan, SelectNode):
        return select(evaluate(plan.child), plan.predicate)
    if isinstance(plan, ProjectNode):
        return project(evaluate(plan.child), list(plan.dimensions))
    raise TypeError(f"unknown plan node {plan!r}")


def optimize(plan: Plan) -> Plan:
    """Apply the rewrites until a fixpoint.

    The result is semantically equivalent to the input: select fusion
    and project fusion are identities of the algebra, and
    select-past-project is applied only when the predicate's dimensions
    survive the projection.
    """
    current = plan
    while True:
        rewritten = _rewrite(current)
        if rewritten == current:
            return current
        current = rewritten


def _rewrite(plan: Plan) -> Plan:
    if isinstance(plan, Base):
        return plan
    if isinstance(plan, SelectNode):
        child = _rewrite(plan.child)
        # select fusion — only for same-dimension predicates (fusing
        # across dimensions multiplies the candidate sets the evaluator
        # must witness)
        if isinstance(child, SelectNode) and \
                set(child.predicate.dims) == set(plan.predicate.dims):
            fused = conjunction(child.predicate, plan.predicate)
            return SelectNode(child=child.child, predicate=fused)
        # push select below project when its dimensions survive
        if isinstance(child, ProjectNode) and \
                set(plan.predicate.dims) <= set(child.dimensions):
            return ProjectNode(
                child=SelectNode(child=child.child,
                                 predicate=plan.predicate),
                dimensions=child.dimensions,
            )
        return SelectNode(child=child, predicate=plan.predicate)
    if isinstance(plan, ProjectNode):
        child = _rewrite(plan.child)
        # project fusion: inner projection is redundant if it keeps a
        # superset of the outer one (projection never drops facts)
        if isinstance(child, ProjectNode) and \
                set(plan.dimensions) <= set(child.dimensions):
            return ProjectNode(child=child.child,
                               dimensions=plan.dimensions)
        return ProjectNode(child=child, dimensions=plan.dimensions)
    raise TypeError(f"unknown plan node {plan!r}")


def explain(plan: Plan, indent: int = 0) -> str:
    """A one-line-per-node rendering of the plan tree."""
    pad = "  " * indent
    if isinstance(plan, Base):
        return f"{pad}Base({plan.mo.schema.fact_type})"
    if isinstance(plan, SelectNode):
        return (f"{pad}σ[{plan.predicate.description}]\n"
                + explain(plan.child, indent + 1))
    if isinstance(plan, ProjectNode):
        return (f"{pad}π[{', '.join(plan.dimensions)}]\n"
                + explain(plan.child, indent + 1))
    raise TypeError(f"unknown plan node {plan!r}")
