"""A small algebraic plan optimizer (paper §5 future work).

Queries over MOs compose the fundamental operators; like relational
engines, a multidimensional engine benefits from rewriting the operator
tree before evaluation.  This module defines a tiny logical plan
language over one base MO —

* :class:`Base` — the input MO;
* :class:`SelectNode` — σ with a predicate;
* :class:`ProjectNode` — π onto dimensions;
* :class:`RenameNode` — ρ of the fact type and/or dimension names;
* :class:`UnionNode` / :class:`DifferenceNode` — ∪ and \\;
* :class:`JoinNode` — the identity join ⋈;
* :class:`AggregateNode` — α with a function, grouping, and result
  spec —

so every fundamental operator of §4.1 can appear in a plan (which is
what makes the static plan typechecker in :mod:`repro.analyze.plan`
total over the algebra), plus an :func:`optimize` pass applying the
classical, *provably equivalence-preserving* rewrites in this algebra:

1. **select fusion**: σ[p](σ[q](X)) → σ[p ∧ q](X), applied only when
   p and q constrain the *same* dimensions: the evaluator witnesses a
   predicate over the product of its dimensions' candidate values, so
   fusing predicates over different dimensions would multiply the
   candidate sets (measured as a slowdown in
   ``benchmarks/bench_optimizer.py``), while same-dimension fusion
   replaces two passes — each of which also restricts every
   fact-dimension relation — with one;
2. **project fusion**: π[A](π[B](X)) → π[A](X) (projection keeps facts,
   so only the outermost dimension list matters);
3. **select-past-project**: π[A](σ[p](X)) ↔ σ[p](π[A](X)); the
   optimizer normalizes to *select first* when p's dimensions are kept
   by A — σ shrinks the fact set, so later π copies less — and must
   keep σ inside when p touches projected-away dimensions (in this
   algebra that order is *required* for meaning, not just speed).

Equivalence of optimized and naive plans is property-tested in
``tests/engine/test_optimizer.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.algebra import (
    aggregate,
    conjunction,
    difference,
    identity_join,
    project,
    rename,
    select,
    union,
)
from repro.algebra.functions import AggregationFunction
from repro.algebra.join import JoinPredicate
from repro.algebra.predicates import Predicate
from repro.core.helpers import ResultSpec
from repro.core.mo import MultidimensionalObject
from repro.obs import metrics, trace

__all__ = ["Base", "SelectNode", "ProjectNode", "RenameNode", "UnionNode",
           "DifferenceNode", "JoinNode", "AggregateNode", "Plan",
           "evaluate", "optimize", "explain", "AnalyzedNode",
           "AnalyzedPlan", "explain_analyze", "node_label", "children_of"]

_REWRITES = metrics.counter("optimizer.rewrite_passes")


@dataclass(frozen=True)
class Base:
    """The plan leaf: the input MO."""

    mo: MultidimensionalObject


@dataclass(frozen=True)
class SelectNode:
    """σ[predicate] over a child plan."""

    child: "Plan"
    predicate: Predicate


@dataclass(frozen=True)
class ProjectNode:
    """π[dimensions] over a child plan."""

    child: "Plan"
    dimensions: Tuple[str, ...]


@dataclass(frozen=True)
class RenameNode:
    """ρ over a child plan: a new fact type and/or dimension renames.

    ``dimension_map`` is a tuple of ``(old_name, new_name)`` pairs —
    tuples, not a dict, so the node stays hashable like every other
    plan node."""

    child: "Plan"
    new_fact_type: Optional[str] = None
    dimension_map: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class UnionNode:
    """∪ of two child plans over common schemas."""

    left: "Plan"
    right: "Plan"


@dataclass(frozen=True)
class DifferenceNode:
    """\\ of two child plans over common schemas."""

    left: "Plan"
    right: "Plan"


@dataclass(frozen=True)
class JoinNode:
    """⋈[predicate] of two child plans with disjoint dimension names."""

    left: "Plan"
    right: "Plan"
    predicate: JoinPredicate = JoinPredicate.TRUE


@dataclass(frozen=True)
class AggregateNode:
    """α[result, function, grouping] over a child plan.

    ``grouping`` is a tuple of ``(dimension_name, category_name)``
    pairs (hashable; omitted dimensions group by ⊤, as in the
    operator).  ``strict_types`` mirrors the operator's default: the
    paper's "prevent" mode raising on aggregation-type violations."""

    child: "Plan"
    function: AggregationFunction
    grouping: Tuple[Tuple[str, str], ...]
    result: ResultSpec
    strict_types: bool = True


Plan = Union[Base, SelectNode, ProjectNode, RenameNode, UnionNode,
             DifferenceNode, JoinNode, AggregateNode]


def evaluate(plan: Plan) -> MultidimensionalObject:
    """Evaluate a plan bottom-up with the algebra's operators."""
    if isinstance(plan, Base):
        return plan.mo
    if isinstance(plan, SelectNode):
        return select(evaluate(plan.child), plan.predicate)
    if isinstance(plan, ProjectNode):
        return project(evaluate(plan.child), list(plan.dimensions))
    if isinstance(plan, RenameNode):
        return rename(evaluate(plan.child), plan.new_fact_type,
                      dict(plan.dimension_map))
    if isinstance(plan, UnionNode):
        return union(evaluate(plan.left), evaluate(plan.right))
    if isinstance(plan, DifferenceNode):
        return difference(evaluate(plan.left), evaluate(plan.right))
    if isinstance(plan, JoinNode):
        return identity_join(evaluate(plan.left), evaluate(plan.right),
                             plan.predicate)
    if isinstance(plan, AggregateNode):
        return aggregate(evaluate(plan.child), plan.function,
                         dict(plan.grouping), plan.result,
                         strict_types=plan.strict_types)
    raise TypeError(f"unknown plan node {plan!r}")


def optimize(plan: Plan) -> Plan:
    """Apply the rewrites until a fixpoint.

    The result is semantically equivalent to the input: select fusion
    and project fusion are identities of the algebra, and
    select-past-project is applied only when the predicate's dimensions
    survive the projection.
    """
    current = plan
    while True:
        rewritten = _rewrite(current)
        if rewritten == current:
            return current
        _REWRITES.inc()
        current = rewritten


def _rewrite(plan: Plan) -> Plan:
    if isinstance(plan, Base):
        return plan
    if isinstance(plan, SelectNode):
        child = _rewrite(plan.child)
        # select fusion — only for same-dimension predicates (fusing
        # across dimensions multiplies the candidate sets the evaluator
        # must witness)
        if isinstance(child, SelectNode) and \
                set(child.predicate.dims) == set(plan.predicate.dims):
            fused = conjunction(child.predicate, plan.predicate)
            return SelectNode(child=child.child, predicate=fused)
        # push select below project when its dimensions survive
        if isinstance(child, ProjectNode) and \
                set(plan.predicate.dims) <= set(child.dimensions):
            return ProjectNode(
                child=SelectNode(child=child.child,
                                 predicate=plan.predicate),
                dimensions=child.dimensions,
            )
        return SelectNode(child=child, predicate=plan.predicate)
    if isinstance(plan, ProjectNode):
        child = _rewrite(plan.child)
        # project fusion: inner projection is redundant if it keeps a
        # superset of the outer one (projection never drops facts)
        if isinstance(child, ProjectNode) and \
                set(plan.dimensions) <= set(child.dimensions):
            return ProjectNode(child=child.child,
                               dimensions=plan.dimensions)
        return ProjectNode(child=child, dimensions=plan.dimensions)
    # the remaining operators take no rewrites yet: recurse only, so
    # the σ/π rules still fire in their subtrees
    if isinstance(plan, RenameNode):
        return RenameNode(child=_rewrite(plan.child),
                          new_fact_type=plan.new_fact_type,
                          dimension_map=plan.dimension_map)
    if isinstance(plan, UnionNode):
        return UnionNode(left=_rewrite(plan.left),
                         right=_rewrite(plan.right))
    if isinstance(plan, DifferenceNode):
        return DifferenceNode(left=_rewrite(plan.left),
                              right=_rewrite(plan.right))
    if isinstance(plan, JoinNode):
        return JoinNode(left=_rewrite(plan.left),
                        right=_rewrite(plan.right),
                        predicate=plan.predicate)
    if isinstance(plan, AggregateNode):
        return AggregateNode(child=_rewrite(plan.child),
                             function=plan.function,
                             grouping=plan.grouping,
                             result=plan.result,
                             strict_types=plan.strict_types)
    raise TypeError(f"unknown plan node {plan!r}")


def node_label(plan: Plan) -> str:
    """The one-line operator label of a plan node (shared by
    :func:`explain`, :func:`explain_analyze`, and the static analyzer's
    diagnostic locations)."""
    if isinstance(plan, Base):
        return f"Base({plan.mo.schema.fact_type})"
    if isinstance(plan, SelectNode):
        return f"σ[{plan.predicate.description}]"
    if isinstance(plan, ProjectNode):
        return f"π[{', '.join(plan.dimensions)}]"
    if isinstance(plan, RenameNode):
        renames = [f"{old}→{new}" for old, new in plan.dimension_map]
        if plan.new_fact_type is not None:
            renames.insert(0, plan.new_fact_type)
        return f"ρ[{', '.join(renames)}]"
    if isinstance(plan, UnionNode):
        return "∪"
    if isinstance(plan, DifferenceNode):
        return "\\"
    if isinstance(plan, JoinNode):
        return f"⋈[{plan.predicate.value}]"
    if isinstance(plan, AggregateNode):
        groups = ", ".join(f"{dim}@{cat}" for dim, cat in plan.grouping)
        return f"α[{plan.function.name}; {groups}]"
    raise TypeError(f"unknown plan node {plan!r}")


def children_of(plan: Plan) -> Tuple[Plan, ...]:
    """The child plans of a node (empty for :class:`Base`) — the
    traversal hook shared with :mod:`repro.analyze.plan`."""
    if isinstance(plan, Base):
        return ()
    if isinstance(plan, (UnionNode, DifferenceNode, JoinNode)):
        return (plan.left, plan.right)
    return (plan.child,)


def explain(plan: Plan, indent: int = 0) -> str:
    """A one-line-per-node rendering of the plan tree."""
    pad = "  " * indent
    parts = [f"{pad}{node_label(plan)}"]
    parts.extend(explain(child, indent + 1)
                 for child in children_of(plan))
    return "\n".join(parts)


@dataclass(frozen=True)
class AnalyzedNode:
    """One evaluated plan node with its measurements.

    ``elapsed_seconds`` is *inclusive* wall time (this node plus its
    subtree, as in PostgreSQL's actual-time column); ``facts_in`` is
    the child's output fact count (its own output for :class:`Base`),
    ``facts_out`` this node's.
    """

    label: str
    elapsed_seconds: float
    facts_in: int
    facts_out: int
    children: Tuple["AnalyzedNode", ...] = ()

    @property
    def self_seconds(self) -> float:
        """This node's own time (inclusive minus children)."""
        return max(
            0.0,
            self.elapsed_seconds
            - sum(c.elapsed_seconds for c in self.children),
        )

    def render(self, indent: int = 0) -> str:
        """This subtree, one annotated line per node."""
        pad = "  " * indent
        line = (f"{pad}{self.label}  facts {self.facts_in} -> "
                f"{self.facts_out}  {self.elapsed_seconds * 1e3:.3f}ms")
        parts = [line]
        parts.extend(c.render(indent + 1) for c in self.children)
        return "\n".join(parts)


@dataclass(frozen=True)
class AnalyzedPlan:
    """An evaluated plan: the result MO plus the annotated node tree
    (the plan-level EXPLAIN ANALYZE)."""

    root: AnalyzedNode
    mo: MultidimensionalObject

    @property
    def total_seconds(self) -> float:
        """Total evaluation wall time (the root's inclusive time)."""
        return self.root.elapsed_seconds

    def render(self) -> str:
        """The annotated tree as text."""
        return self.root.render()


def explain_analyze(plan: Plan) -> AnalyzedPlan:
    """Evaluate ``plan`` bottom-up, annotating every node with elapsed
    wall time and in/out fact counts — the plan-level counterpart of
    :meth:`repro.engine.query.Query.explain`.

    The evaluation is the real one (same operators as
    :func:`evaluate`); the returned :class:`AnalyzedPlan` carries the
    result MO, so analyzing costs one evaluation, not two.
    """

    def rec(node: Plan) -> Tuple[AnalyzedNode, MultidimensionalObject]:
        t0 = time.perf_counter()
        if isinstance(node, Base):
            mo = node.mo
            analyzed = AnalyzedNode(
                label=node_label(node),
                elapsed_seconds=time.perf_counter() - t0,
                facts_in=len(mo.facts), facts_out=len(mo.facts))
            return analyzed, mo
        analyzed_children = []
        child_mos = []
        for child in children_of(node):
            analyzed_child, child_mo = rec(child)
            analyzed_children.append(analyzed_child)
            child_mos.append(child_mo)
        if isinstance(node, SelectNode):
            mo = select(child_mos[0], node.predicate)
        elif isinstance(node, ProjectNode):
            mo = project(child_mos[0], list(node.dimensions))
        elif isinstance(node, RenameNode):
            mo = rename(child_mos[0], node.new_fact_type,
                        dict(node.dimension_map))
        elif isinstance(node, UnionNode):
            mo = union(child_mos[0], child_mos[1])
        elif isinstance(node, DifferenceNode):
            mo = difference(child_mos[0], child_mos[1])
        elif isinstance(node, JoinNode):
            mo = identity_join(child_mos[0], child_mos[1], node.predicate)
        elif isinstance(node, AggregateNode):
            mo = aggregate(child_mos[0], node.function,
                           dict(node.grouping), node.result,
                           strict_types=node.strict_types)
        else:
            raise TypeError(f"unknown plan node {node!r}")
        analyzed = AnalyzedNode(
            label=node_label(node),
            elapsed_seconds=time.perf_counter() - t0,
            facts_in=sum(c.facts_out for c in analyzed_children),
            facts_out=len(mo.facts),
            children=tuple(analyzed_children))
        return analyzed, mo

    with trace.span("optimizer.explain_analyze"):
        root, mo = rec(plan)
    return AnalyzedPlan(root=root, mo=mo)
