"""Materialization advisor (paper §3.4 + §5, combined).

"Without summarizability ... we have to pre-compute the total results
for all the aggregations that we need fast answers to, while other
aggregates must be computed from the base data."  Given an MO and the
groupings a workload is expected to ask for, the advisor turns that
sentence into a plan:

* groupings whose Lenz-Shoshani condition fails are **mandatory**
  materializations (nothing finer can serve them);
* for the summarizable rest, a greedy pass picks up to ``budget``
  *covering* materializations, preferring finer groupings that can
  serve many requested ones by safe combination, weighted by how much
  scanning they save.

The output is an ordered list of
:class:`MaterializationRecommendation`; feeding it to a
:class:`~repro.engine.preagg.PreAggregateStore` readies the store for
the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.functions import AggregationFunction, SetCount
from repro.core.mo import MultidimensionalObject
from repro.core.properties import check_summarizability
from repro.engine.preagg import PreAggregateStore

__all__ = ["MaterializationRecommendation", "recommend_materializations",
           "apply_recommendations"]

Grouping = Dict[str, str]


@dataclass(frozen=True)
class MaterializationRecommendation:
    """One aggregate to materialize, with the groupings it will serve
    and why it was chosen."""

    grouping: Tuple[Tuple[str, str], ...]
    serves: Tuple[Tuple[Tuple[str, str], ...], ...]
    reason: str

    def grouping_dict(self) -> Grouping:
        """The grouping as a dict (the store's input shape)."""
        return dict(self.grouping)


def _key(grouping: Grouping) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(grouping.items()))


def _covers(mo: MultidimensionalObject, finer: Grouping,
            coarser: Grouping) -> bool:
    if set(finer) != set(coarser):
        return False
    return all(
        mo.dimension(name).dtype.leq(finer[name], coarser[name])
        for name in finer
    )


def recommend_materializations(
    mo: MultidimensionalObject,
    groupings: Sequence[Grouping],
    function: Optional[AggregationFunction] = None,
    budget: int = 3,
) -> List[MaterializationRecommendation]:
    """Plan which of the requested groupings to materialize.

    ``budget`` bounds the *optional* (covering) materializations; the
    mandatory ones — non-summarizable groupings, which no finer result
    can serve — are always included and do not consume budget.
    """
    function = function or SetCount()
    requested = [dict(g) for g in groupings]
    verdicts = {
        _key(g): check_summarizability(mo, g, function.distributive)
        for g in requested
    }
    recommendations: List[MaterializationRecommendation] = []
    mandatory = [
        g for g in requested if not verdicts[_key(g)].summarizable
    ]
    for g in mandatory:
        recommendations.append(MaterializationRecommendation(
            grouping=_key(g),
            serves=(_key(g),),
            reason="mandatory: " + verdicts[_key(g)].explain(),
        ))
    remaining: List[Grouping] = [
        g for g in requested if verdicts[_key(g)].summarizable
    ]
    uncovered: Set = {_key(g) for g in remaining}
    # candidates: the summarizable requested groupings themselves; a
    # finer one can serve every coarser summarizable one it covers
    for _ in range(budget):
        if not uncovered:
            break
        best: Optional[Grouping] = None
        best_served: Set = set()
        for candidate in remaining:
            served = {
                _key(g) for g in remaining
                if _key(g) in uncovered and _covers(mo, candidate, g)
            }
            if len(served) > len(best_served):
                best, best_served = candidate, served
        if best is None or not best_served:
            break
        recommendations.append(MaterializationRecommendation(
            grouping=_key(best),
            serves=tuple(sorted(best_served)),
            reason=(f"covers {len(best_served)} requested grouping(s) by "
                    f"safe combination"),
        ))
        uncovered -= best_served
    for key in sorted(uncovered):
        recommendations.append(MaterializationRecommendation(
            grouping=key,
            serves=(key,),
            reason="requested but out of budget: answer from base data",
        ))
    return recommendations


def apply_recommendations(
    store: PreAggregateStore,
    recommendations: Sequence[MaterializationRecommendation],
    function: Optional[AggregationFunction] = None,
) -> int:
    """Materialize every in-budget recommendation into the store;
    returns how many aggregates were materialized.  "Out of budget"
    entries are skipped (they are advice to scan base data)."""
    function = function or SetCount()
    materialized = 0
    for rec in recommendations:
        if rec.reason.startswith("requested but out of budget"):
            continue
        store.materialize(function, rec.grouping_dict())
        materialized += 1
    return materialized
