"""Temporal analytics: group counts as time series (paper §3.2/§4.2).

The case study's motivating question is inherently temporal — do some
diagnoses occur more often in some areas *over time*?  This module
evaluates a grouping at a sweep of chronons (each point is a
valid-timeslice-style evaluation, so a fact is counted at most once per
instant — the condition under which the paper extends summarizability
to snapshot-strict/partitioning hierarchies), and surfaces the change
points at which the series can jump.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.mo import MultidimensionalObject
from repro.core.properties import critical_chronons
from repro.core.values import DimensionValue
from repro.temporal.chronon import Chronon

__all__ = ["change_points", "group_count_series", "series_table"]


def change_points(mo: MultidimensionalObject,
                  dimension_name: Optional[str] = None) -> List[Chronon]:
    """The chronons at which the MO's temporal state can change: the
    endpoints of every membership, order, and fact-dimension chronon
    set (of one dimension, or of all)."""
    names = ([dimension_name] if dimension_name
             else list(mo.dimension_names))
    points: Set[Chronon] = set()
    for name in names:
        points.update(critical_chronons(mo.dimension(name)))
        for _, _, time, _ in mo.relation(name).annotated_pairs():
            points.update(time.sample_chronons())
    return sorted(points)


def group_count_series(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
    at: Sequence[Chronon],
) -> Dict[DimensionValue, List[int]]:
    """Distinct-fact counts per category value, evaluated at each
    chronon of ``at``.

    Values that are members of the category at *any* of the sampled
    chronons appear in the result; instants where a value is not valid
    contribute 0.
    """
    dimension = mo.dimension(dimension_name)
    # the rollup index serves the candidate facts per value from its
    # closure table (built once for the whole sweep); the per-chronon
    # temporal filter stays on the naive per-fact test
    index = mo.rollup_index()
    values: Set[DimensionValue] = set()
    for t in at:
        values |= dimension.category(category_name).members(at=t)
    series: Dict[DimensionValue, List[int]] = {v: [] for v in values}
    for t in at:
        current = dimension.category(category_name).members(at=t)
        for value in values:
            if value not in current:
                series[value].append(0)
                continue
            count = len(index.facts_characterized_by(
                dimension_name, value, at=t))
            series[value].append(count)
    return series


def series_table(
    series: Dict[DimensionValue, List[int]],
    at: Sequence[Chronon],
    label_for: Optional[Dict[Chronon, str]] = None,
) -> List[List[object]]:
    """Flatten a series into printable rows: one per value, columns per
    sampled chronon (for :func:`repro.report.render_table`)."""
    from repro.temporal.chronon import format_day

    rows: List[List[object]] = []
    for value in sorted(series, key=repr):
        label = value.label or str(value.sid)
        rows.append([label] + series[value])
    header_labels = [
        (label_for or {}).get(t, format_day(t)) for t in at
    ]
    return [["value"] + header_labels] + rows
