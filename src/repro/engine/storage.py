"""Backward-compatible home of the rollup index.

The indexed-storage layer grew into a full subsystem —
:mod:`repro.engine.rollup_index` — with interned ids, one-sweep closure
builds, and versioned lazy invalidation.  This module re-exports
:class:`~repro.engine.rollup_index.RollupIndex` under its original
import path; the historical API (``characterization_map``,
``facts_for``, ``group_counts``, ``invalidate``) is unchanged.

Prefer :meth:`repro.core.mo.MultidimensionalObject.rollup_index` over
constructing an index directly, so all hot paths share one instance.
"""

from __future__ import annotations

from repro.engine.rollup_index import RollupIndex

__all__ = ["RollupIndex"]
