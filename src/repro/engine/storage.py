"""Indexed storage for fast grouping (paper §5, future work:
"how the model can be efficiently implemented using special-purpose
algorithms and data structures").

A :class:`RollupIndex` precomputes, per dimension category, the mapping
from each category value to the set of facts it characterizes (the
``f ⇝ e`` relation materialized).  Grouping then becomes a dictionary
lookup instead of a per-query graph walk, which is what the scaling
benchmarks measure against the naive evaluation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.core.dimension import Dimension
from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue, Fact

__all__ = ["RollupIndex"]


class RollupIndex:
    """Materialized characterization maps for one MO.

    The index is built lazily per ``(dimension, category)`` and cached;
    it is valid as long as the MO is not mutated (the engine treats MOs
    as immutable once indexed — algebra operators return fresh MOs).
    """

    def __init__(self, mo: MultidimensionalObject) -> None:
        self._mo = mo
        self._maps: Dict[Tuple[str, str],
                         Dict[DimensionValue, FrozenSet[Fact]]] = {}

    @property
    def mo(self) -> MultidimensionalObject:
        """The indexed MO."""
        return self._mo

    def characterization_map(
        self, dimension_name: str, category_name: str
    ) -> Dict[DimensionValue, FrozenSet[Fact]]:
        """value → facts characterized, for one category.

        Built bottom-up: each base pair contributes its fact to every
        ancestor of its value that lies in the requested category, so
        the build is one pass over the fact-dimension relation plus one
        ancestor walk per distinct base value.
        """
        key = (dimension_name, category_name)
        cached = self._maps.get(key)
        if cached is not None:
            return cached
        dimension = self._mo.dimension(dimension_name)
        category = dimension.category(category_name)
        relation = self._mo.relation(dimension_name)
        accumulator: Dict[DimensionValue, Set[Fact]] = {
            value: set() for value in category.members()
        }
        ancestor_cache: Dict[DimensionValue, Set[DimensionValue]] = {}
        for fact, base in relation.pairs():
            ancestors = ancestor_cache.get(base)
            if ancestors is None:
                ancestors = {
                    a for a in dimension.ancestors(base, reflexive=True)
                    if a in accumulator
                }
                ancestor_cache[base] = ancestors
            for value in ancestors:
                accumulator[value].add(fact)
        result = {v: frozenset(facts) for v, facts in accumulator.items()}
        self._maps[key] = result
        return result

    def facts_for(self, dimension_name: str, category_name: str,
                  value: DimensionValue) -> FrozenSet[Fact]:
        """The facts characterized by ``value`` (empty if none)."""
        return self.characterization_map(
            dimension_name, category_name).get(value, frozenset())

    def group_counts(self, dimension_name: str,
                     category_name: str) -> Dict[DimensionValue, int]:
        """Distinct-fact counts per category value — the indexed version
        of Example 12's set-count rollup."""
        return {
            value: len(facts)
            for value, facts in self.characterization_map(
                dimension_name, category_name).items()
        }

    def invalidate(self) -> None:
        """Drop all cached maps (call after mutating the MO)."""
        self._maps.clear()
