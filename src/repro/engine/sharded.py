"""Parallel sharded execution of α over a process pool.

:func:`repro.algebra.aggregate.aggregate_sharded` is the trusted
single-process statement of partition-and-merge semantics; this module
is its executor: partition the fact set by interned-id range, build the
per-shard columnar grouping *in worker processes*, and merge per-key
partials with ``function.combine`` (ALGEBRAIC functions — AVG — merge
``(sum, count)`` accumulator states instead, never finished results).

Admission is gated by the static shard-safety analyzer: the backend
:meth:`~ShardedBackend.supports` a plan only when
:func:`repro.analyze.shardability.shardability_of` returns SHARDABLE,
refusing otherwise with the exact MD07x diagnostic the analyzer
predicts.  Plans the analyzer vouches for but the columnar payload
cannot express (temporal MOs, kernel-less distributive functions,
multi-argument algebraic functions, poisoned measure columns, composed-
key radix overflow) refuse with ``MD077``.

Worker payloads are **pickling-safe by construction**: contiguous
slices of the rollup index's interned arrays (value-id columns, multi-
value side maps, measure summaries) plus the function instance — never
a live MO, dimension, or index.  The parent keeps the decode tables
(value id → :class:`~repro.core.values.DimensionValue`), so workers
move only machine integers and floats.  A payload round-trips through
``pickle`` under the ``spawn`` start method, which the regression test
pins even though Linux CI forks.

Payloads are cached per MO keyed by its
:func:`~repro.engine.result_cache.version_vector` (plus dices,
grouping, measure args, and shard count) — the pool itself is
stateless, so the version-vector key on the payload cache is the whole
lifecycle story: a mutation misses the cache and rebuilds the slices,
and no worker can ever hold a stale view.

Float caveat: SUM/AVG partials add measure subtotals in fact-id order
within a shard and in shard order across the merge — exact for
integral measures, potentially an ULP apart from the single-scan
kernel for arbitrary floats (the same caveat docs/PERFORMANCE.md
records for kernel vs object path).
"""

from __future__ import annotations

import math
import os
import threading
import time
import warnings
from array import array
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.algebra.functions import AggregationFunction, has_batch_kernel
from repro.core.errors import SummarizabilityWarning
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.values import DimensionValue
from repro.engine.backends import (
    BackendRefused,
    ExecutionBackend,
    register_backend,
)
from repro.engine.columnar import MAX_COMPOSED_KEY
from repro.engine.result_cache import version_vector
from repro.engine.rollup_index import MULTI_VALUED, UNCHARACTERIZED
from repro.obs import metrics, trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.diagnostics import Diagnostic
    from repro.engine.query import ExplainStep, Query, QueryResultRow

__all__ = [
    "ShardDimension",
    "ShardMeasures",
    "ShardPayload",
    "ShardResult",
    "ShardedBackend",
    "build_payloads",
    "shutdown_pool",
]

_EXECUTES = metrics.counter("sharded.execute")
_SHARDS_RUN = metrics.counter("sharded.shards_run")
_REFUSED = metrics.counter("sharded.refused")
_PAYLOAD_HITS = metrics.counter("sharded.payload.cache_hit")
_PAYLOAD_BUILDS = metrics.counter("sharded.payload.build")
_POOLS = metrics.counter("sharded.pool.created")
_SHARD_ROWS = metrics.histogram("sharded.shard_rows")
_MERGE_KEYS = metrics.histogram("sharded.merge.keys")

#: payload-cache entries kept per MO (grouping × function × shard-count
#: variants); least recently used beyond this are dropped.
MAX_CACHED_PAYLOADS = 8

#: per-dimension decode spec the parent keeps: (name, radix, code →
#: value table) in sorted-grouping order — the same shape
#: :class:`~repro.engine.columnar.ColumnarGrouping` uses.
Spec = Tuple[str, int, List[DimensionValue]]


# ---------------------------------------------------------------------------
# worker payloads (picklable: interned arrays, never live MOs)


@dataclass(frozen=True)
class ShardDimension:
    """One grouped dimension's slice of a shard payload.

    ``column[fid - base]`` is the fact's single grouping-value id,
    :data:`~repro.engine.rollup_index.UNCHARACTERIZED`, or
    :data:`~repro.engine.rollup_index.MULTI_VALUED` with the id tuple in
    ``multi[fid]``; ``code`` maps value ids to mixed-radix digits."""

    name: str
    radix: int
    column: array
    multi: Dict[int, Tuple[int, ...]]
    code: Dict[int, int]


@dataclass(frozen=True)
class ShardMeasures:
    """One argument dimension's measure summaries, sliced to the shard's
    fact-id range (``counts[fid - base]`` etc.)."""

    name: str
    counts: array
    sums: array
    mins: array
    maxs: array


@dataclass(frozen=True)
class ShardPayload:
    """Everything one worker needs, self-contained and picklable."""

    shard: int
    base: int
    fact_ids: array
    dims: Tuple[ShardDimension, ...]
    measures: Tuple[ShardMeasures, ...]
    function: AggregationFunction
    #: ``"distributive"`` evaluates the function's batch kernel per
    #: shard; ``"algebraic"`` returns ``(sum, count)`` accumulators.
    mode: str


@dataclass
class ShardResult:
    """One worker's answer: per-key partials plus the group membership
    needed for α's merged-group presentation."""

    shard: int
    n_rows: int
    partials: Dict[int, object]
    fact_lists: Dict[int, array]
    #: keys with at least one measured row in this shard, or ``None``
    #: when the function takes no measure argument.  The merge drops
    #: placeholder partials (MIN/MAX's ``nan``) from unmeasured shards.
    measured: Optional[frozenset]


class _RowMeasures:
    """A :class:`ShardMeasures` slice gathered row-aligned with the
    worker's key column — duck-typed to
    :class:`~repro.engine.columnar.MeasureRows` for ``batch_apply``."""

    __slots__ = ("counts", "sums", "mins", "maxs")

    def __init__(self, measures: ShardMeasures, row_facts: array,
                 base: int) -> None:
        idxs = [fid - base for fid in row_facts]
        self.counts = array("q", map(measures.counts.__getitem__, idxs))
        self.sums = array("d", map(measures.sums.__getitem__, idxs))
        self.mins = array("d", map(measures.mins.__getitem__, idxs))
        self.maxs = array("d", map(measures.maxs.__getitem__, idxs))


def _run_shard(payload: ShardPayload) -> ShardResult:
    """The worker: compose mixed-radix group keys for the shard's fact
    range (mirroring ``ColumnarStore._fill_rows`` — imprecise facts
    product-expand, uncharacterized facts drop), evaluate the function,
    and return per-key partials plus group membership.  Module-level so
    the ``spawn`` start method can import it by reference."""
    keys = array("q")
    row_facts = array("q")
    append_key = keys.append
    append_fact = row_facts.append
    base = payload.base
    dims = payload.dims
    if not dims:
        # every grouped dimension is trivial: the single apex cell
        for fid in payload.fact_ids:
            append_key(0)
            append_fact(fid)
    else:
        for fid in payload.fact_ids:
            composed = 0
            expansions = None
            for dim in dims:
                idx = fid - base
                column = dim.column
                vid = (column[idx] if 0 <= idx < len(column)
                       else UNCHARACTERIZED)
                if vid >= 0:
                    digit = dim.code[vid]
                    if expansions is None:
                        composed = composed * dim.radix + digit
                    else:
                        expansions = [k * dim.radix + digit
                                      for k in expansions]
                elif vid == MULTI_VALUED:
                    digits = [dim.code[v] for v in dim.multi[fid]]
                    if expansions is None:
                        expansions = [composed * dim.radix + d
                                      for d in digits]
                    else:
                        expansions = [k * dim.radix + d
                                      for k in expansions for d in digits]
                else:  # UNCHARACTERIZED: the fact drops out entirely
                    expansions = ()
                    break
            if expansions is None:
                append_key(composed)
                append_fact(fid)
            else:
                for key in expansions:
                    append_key(key)
                    append_fact(fid)

    function = payload.function
    measures = {m.name: _RowMeasures(m, row_facts, base)
                for m in payload.measures}
    measured: Optional[frozenset] = None
    if payload.mode == "algebraic":
        rows = measures[function.args[0]]
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        sget, cget = sums.get, counts.get
        for key, count, subtotal in zip(keys, rows.counts, rows.sums):
            counts[key] = cget(key, 0) + count
            sums[key] = sget(key, 0.0) + subtotal
        partials: Dict[int, object] = {
            key: (sums[key], counts[key]) for key in counts
        }
    else:
        partials = function.batch_apply(keys, measures)
        if function.args:
            rows = measures[function.args[0]]
            measured = frozenset(
                key for key, count in zip(keys, rows.counts) if count)

    fact_lists: Dict[int, array] = {}
    get = fact_lists.get
    for key, fid in zip(keys, row_facts):
        bucket = get(key)
        if bucket is None:
            fact_lists[key] = array("q", (fid,))
        else:
            bucket.append(fid)
    return ShardResult(shard=payload.shard, n_rows=len(keys),
                       partials=partials, fact_lists=fact_lists,
                       measured=measured)


# ---------------------------------------------------------------------------
# parent side: payload building, the pool, and the merge


def _refusal(message: str, location: str) -> "Diagnostic":
    from repro.analyze.diagnostics import CATALOG, Diagnostic
    severity, _meaning = CATALOG["MD077"]
    return Diagnostic(code="MD077", severity=severity, message=message,
                      location=location,
                      hint="evaluate on the memory or sql backend")


def build_payloads(
    mo: MultidimensionalObject,
    grouping: Dict[str, str],
    function: AggregationFunction,
    mode: str,
    n_shards: int,
) -> Tuple[List[ShardPayload], List[Spec]]:
    """Slice ``mo``'s interned columns into ``n_shards`` contiguous
    fact-id ranges plus the parent-side decode specs (sorted-grouping
    order, so decoded combos align with the row names).  Raises
    :class:`~repro.engine.backends.BackendRefused` (``MD077``) on a
    composed-key radix overflow or a poisoned measure column."""
    index = mo.rollup_index()
    names = sorted(grouping)
    location = f"α grouping {names}"
    specs: List[Spec] = []
    nontrivial = []  # (name, column, multi, code, radix)
    empty = False
    max_key = 1
    for name in names:
        category = grouping[name]
        dimension = mo.dimension(name)
        if category == dimension.dtype.top_name:
            # ⊤ groups every fact into one cell: radix 1, no column
            specs.append((name, 1, [dimension.top_value]))
            continue
        column, multi = index.grouping_value_id_array(name, category)
        vids = {vid for vid in column if vid >= 0}
        for vid_tuple in multi.values():
            vids.update(vid_tuple)
        if not vids:
            # no fact characterized in this dimension: no groups at all
            specs.append((name, 1, [dimension.top_value]))
            empty = True
            continue
        ordered = sorted(vids)
        code = {vid: i for i, vid in enumerate(ordered)}
        decode = [index.value_of(name, vid) for vid in ordered]
        radix = len(ordered)
        max_key *= radix
        if max_key > MAX_COMPOSED_KEY:
            raise BackendRefused(_refusal(
                f"composed group-key space of {names} overflows "
                f"{MAX_COMPOSED_KEY} (signed 64-bit keys)", location))
        specs.append((name, radix, decode))
        nontrivial.append((name, column, multi, code, radix))

    fact_ids = sorted(index.mo_fact_ids())
    if empty or not fact_ids:
        return [], specs

    measure_columns = []
    if function.args:
        store = index.columnar()
        for arg in dict.fromkeys(function.args):
            measure = store.measure_column(arg)
            if measure.error is not None:
                raise BackendRefused(_refusal(
                    f"measure column {arg!r} is poisoned "
                    f"({measure.error}); workers cannot evaluate it "
                    f"from columnar payloads", location))
            measure_columns.append((arg, measure))

    payloads: List[ShardPayload] = []
    size, extra = divmod(len(fact_ids), n_shards)
    start = 0
    for shard in range(n_shards):
        stop = start + size + (1 if shard < extra else 0)
        shard_ids = fact_ids[start:stop]
        start = stop
        if not shard_ids:
            continue
        lo, hi = shard_ids[0], shard_ids[-1]
        dims = tuple(
            ShardDimension(
                name=name, radix=radix,
                column=column[lo:hi + 1],
                multi={fid: vids for fid, vids in multi.items()
                       if lo <= fid <= hi},
                code=code)
            for name, column, multi, code, radix in nontrivial)
        measures = tuple(
            ShardMeasures(name=arg,
                          counts=measure.counts[lo:hi + 1],
                          sums=measure.sums[lo:hi + 1],
                          mins=measure.mins[lo:hi + 1],
                          maxs=measure.maxs[lo:hi + 1])
            for arg, measure in measure_columns)
        payloads.append(ShardPayload(
            shard=shard, base=lo, fact_ids=array("q", shard_ids),
            dims=dims, measures=measures, function=function, mode=mode))
    return payloads, specs


_POOL_LOCK = threading.Lock()
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _pool(n_workers: int) -> ProcessPoolExecutor:
    """The shared process pool, grown (never shrunk) to ``n_workers``.
    Workers are stateless — every task ships a version-stamped payload
    — so one pool serves every MO and every shard count."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < n_workers:
            if _POOL is not None:
                _POOL.shutdown(wait=True)
            _POOL = ProcessPoolExecutor(max_workers=n_workers)
            _POOL_WORKERS = n_workers
            _POOLS.inc()
        return _POOL


def shutdown_pool() -> None:
    """Tear down the shared worker pool (tests, atexit hygiene); the
    next sharded execution lazily recreates it."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


def _row_sort_key(names):
    from repro.engine.query import _row_sort_key as key
    return key(names)


def _decode(key: int, specs: List[Spec]) -> Tuple[DimensionValue, ...]:
    values: List[DimensionValue] = []
    for _name, radix, decode in reversed(specs):
        key, digit = divmod(key, radix)
        values.append(decode[digit])
    values.reverse()
    return tuple(values)


def _merge_rows(
    results: List[ShardResult],
    specs: List[Spec],
    names: List[str],
    function: AggregationFunction,
    mode: str,
) -> List["QueryResultRow"]:
    """Merge per-shard partials into α's row presentation.

    Partials are combined in shard (= fact-id) order; a key seen in one
    shard keeps its partial unmerged, the way
    :func:`~repro.algebra.aggregate.aggregate_sharded` skips the
    combine for singleton cells.  MIN/MAX placeholder partials from
    shards where a key has rows but no measures are dropped (unless no
    shard measured the key, where all-placeholder partials combine to
    the kernel's ``nan``).  Value combinations selecting the same fact
    set then merge into one group and re-expand as the cross product of
    the per-dimension value sets — byte-identical to
    ``Query._run_alpha``'s presentation of α's set-fact identity."""
    partials: Dict[int, List[object]] = {}
    flags: Dict[int, List[bool]] = {}
    members: Dict[int, List[int]] = {}
    filtered = False
    for result in sorted(results, key=lambda r: r.shard):
        shard_measured = result.measured
        if shard_measured is not None:
            filtered = True
        for key, partial in result.partials.items():
            partials.setdefault(key, []).append(partial)
            if shard_measured is not None:
                flags.setdefault(key, []).append(key in shard_measured)
            members.setdefault(key, []).extend(result.fact_lists[key])
    _MERGE_KEYS.observe(len(partials))

    raws: Dict[int, object] = {}
    for key, parts in partials.items():
        if mode == "algebraic":
            total = 0.0
            count = 0
            for part_sum, part_count in parts:
                total += part_sum
                count += part_count
            raws[key] = (total / count) if count else math.nan
            continue
        kept = parts
        if filtered:
            key_flags = flags[key]
            if any(key_flags):
                kept = [part for part, measured
                        in zip(parts, key_flags) if measured]
        raws[key] = kept[0] if len(kept) == 1 else function.combine(kept)

    # α identifies a set-fact by its members: combinations selecting
    # the same fact set collapse into one group, re-expanded below
    merged: Dict[frozenset, Tuple[List[int], object]] = {}
    for key in sorted(raws):
        group_members = frozenset(members[key])
        entry = merged.get(group_members)
        if entry is None:
            merged[group_members] = ([key], raws[key])
        else:
            entry[0].append(key)

    rows: List["QueryResultRow"] = []
    for keys, raw in merged.values():
        value_sets: List[set] = [set() for _ in names]
        for key in keys:
            for value_set, value in zip(value_sets, _decode(key, specs)):
                value_set.add(value)
        combos: List[Dict[str, DimensionValue]] = [{}]
        for name, value_set in zip(names, value_sets):
            combos = [
                {**combo, name: value}
                for combo in combos
                for value in sorted(value_set, key=repr)
            ]
        rows.extend((combo, raw) for combo in combos)
    rows.sort(key=_row_sort_key(names))
    return rows


class ShardedBackend(ExecutionBackend):
    """Parallel partition-and-merge execution of one α.

    Admitted only for plans the static analyzer proves SHARDABLE;
    refuses with the predicted MD07x diagnostic otherwise (and with
    ``MD077`` when the columnar worker payload cannot express an
    otherwise shard-safe plan).  No fallback: a refusal raises
    :class:`~repro.engine.backends.BackendRefused`, so a caller that
    wants transparency gates on :meth:`Query.check` first.
    """

    name = "sharded"
    fallback = None

    def __init__(self, n_shards: Optional[int] = None) -> None:
        if n_shards is not None and n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._n_shards = n_shards
        # MO → (versions, dices, grouping, args, mode, n_shards) →
        # (payloads, specs); version-keyed, so mutation misses
        cache: "WeakKeyDictionary[MultidimensionalObject, OrderedDict]"
        cache = WeakKeyDictionary()
        self._payload_cache = cache
        self._cache_lock = threading.Lock()

    @property
    def n_shards(self) -> int:
        return self._n_shards or os.cpu_count() or 2

    def plan_for(self, query: "Query", function: AggregationFunction,
                 strict_types: bool):
        # the chained-σ shape Query.check() analyzes, so a refusal here
        # quotes exactly the diagnostic the user already saw from check()
        return query.to_plan(function, strict_types)

    def supports(self, query: "Query", plan) -> Optional["Diagnostic"]:
        from repro.analyze import ShardVerdict, shardability_of
        verdict, report = shardability_of(plan)
        if verdict is not ShardVerdict.SHARDABLE:
            _REFUSED.inc()
            for diagnostic in report.diagnostics:
                if diagnostic.code.startswith("MD07"):
                    return diagnostic
            return _refusal(  # pragma: no cover - every non-SHARDABLE
                # verdict carries an MD07x finding today; belt for
                # future analyzer extensions
                f"verdict {verdict.value} without a specific finding",
                "plan")
        diagnostic = self._payload_refusal(query, plan.function)
        if diagnostic is not None:
            _REFUSED.inc()
        return diagnostic

    def _payload_refusal(self, query: "Query",
                         function: AggregationFunction,
                         ) -> Optional["Diagnostic"]:
        """MD077: statically shard-safe, but not expressible as a
        columnar worker payload."""
        from repro.analyze import FunctionClass, classify_function
        location = f"α[{function.name}]"
        if query._mo.kind is not TimeKind.SNAPSHOT:
            return _refusal(
                "temporal MO: per-shard columnar payloads carry no "
                "validity intervals", location)
        classification = classify_function(function)
        if classification.function_class is FunctionClass.ALGEBRAIC:
            if len(function.args) != 1:
                return _refusal(
                    f"{function.name} is algebraic with "
                    f"{len(function.args)} argument dimensions; only "
                    f"single-argument (sum, count) accumulators are "
                    f"implemented", location)
        elif not has_batch_kernel(function):
            return _refusal(
                f"{function.name} has no columnar batch kernel "
                f"(MD040): workers evaluate kernels only, never "
                f"object-path apply()", location)
        return None

    def _mode(self, function: AggregationFunction) -> str:
        from repro.analyze import FunctionClass, classify_function
        classification = classify_function(function)
        if classification.function_class is FunctionClass.ALGEBRAIC:
            return "algebraic"
        return "distributive"

    def _payloads(
        self, query: "Query", mo: MultidimensionalObject,
        function: AggregationFunction, mode: str,
    ) -> Tuple[List[ShardPayload], List[Spec], bool]:
        """Version-keyed payload cache around :func:`build_payloads`;
        returns ``(payloads, specs, was_cache_hit)``.  Keyed on the
        *original* MO (the diced MO is a fresh derivation per call) —
        ``select`` is deterministic, so original versions + dices
        determine the diced columns."""
        key = (
            version_vector(query._mo),
            tuple(query._dices),
            tuple(sorted(query._grouping.items())),
            tuple(function.args), type(function).__name__,
            mode, self.n_shards,
        )
        with self._cache_lock:
            per_mo = self._payload_cache.get(query._mo)
            if per_mo is not None:
                cached = per_mo.get(key)
                if cached is not None:
                    per_mo.move_to_end(key)
                    _PAYLOAD_HITS.inc()
                    return cached[0], cached[1], True
        payloads, specs = build_payloads(
            mo, dict(query._grouping), function, mode, self.n_shards)
        _PAYLOAD_BUILDS.inc()
        with self._cache_lock:
            per_mo = self._payload_cache.get(query._mo)
            if per_mo is None:
                per_mo = self._payload_cache.setdefault(
                    query._mo, OrderedDict())
            per_mo[key] = (payloads, specs)
            per_mo.move_to_end(key)
            while len(per_mo) > MAX_CACHED_PAYLOADS:
                per_mo.popitem(last=False)
        return payloads, specs, False

    def run(self, query: "Query", plan,
            function: AggregationFunction, strict_types: bool,
            steps: Optional[List["ExplainStep"]],
            ) -> Tuple[List["QueryResultRow"], str]:
        from repro.engine.query import ExplainStep
        # α's applicability gate, replicated so strict mode raises (and
        # warn mode warns) exactly as the memory path would
        applicable = function.check_applicable(query._mo,
                                               strict=strict_types)
        if not applicable:
            warnings.warn(
                f"{function.name} applied to data whose aggregation "
                f"type does not permit it; the result may be "
                f"meaningless",
                SummarizabilityWarning, stacklevel=2)
        _EXECUTES.inc()
        mode = self._mode(function)
        names = sorted(query._grouping)
        t0 = time.perf_counter()
        mo = query._diced_mo()
        if steps is not None and query._dices:
            steps.append(ExplainStep(
                name="dice",
                detail=", ".join(f"{d}={v!r}" for d, v in query._dices),
                elapsed_seconds=time.perf_counter() - t0,
                facts_in=len(query._mo.facts), facts_out=len(mo.facts)))
        with trace.span("query.execute",
                        grouping=tuple(sorted(query._grouping)),
                        n_dices=len(query._dices),
                        function=function.name, backend="sharded"):
            t0 = time.perf_counter()
            payloads, specs, hit = self._payloads(query, mo, function,
                                                  mode)
            if steps is not None:
                steps.append(ExplainStep(
                    name="shard-plan",
                    detail=f"{len(payloads)} shard(s), {mode} merge, "
                           f"payloads {'cached' if hit else 'built'}",
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=len(mo.facts),
                    facts_out=sum(len(p.fact_ids) for p in payloads)))
            t0 = time.perf_counter()
            results: List[ShardResult] = []
            if payloads:
                pool = _pool(min(self.n_shards, os.cpu_count() or 2))
                for result in pool.map(_run_shard, payloads):
                    _SHARDS_RUN.inc()
                    _SHARD_ROWS.observe(result.n_rows)
                    results.append(result)
            if steps is not None:
                steps.append(ExplainStep(
                    name="shard-map",
                    detail=f"pool of {_POOL_WORKERS} worker(s)",
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=sum(len(p.fact_ids) for p in payloads),
                    facts_out=sum(r.n_rows for r in results)))
            t0 = time.perf_counter()
            rows = _merge_rows(results, specs, names, function, mode)
            if steps is not None:
                steps.append(ExplainStep(
                    name="shard-merge",
                    detail=f"{function.name} over "
                           f"{dict(sorted(query._grouping.items()))}",
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=sum(r.n_rows for r in results),
                    facts_out=len(rows)))
            return rows, "sharded"


register_backend(ShardedBackend())
