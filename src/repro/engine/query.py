"""A high-level OLAP query API over MOs.

The paper's future work asks how the model could back an OLAP tool;
:class:`Query` is a small fluent layer — dice / slice / roll-up — that
compiles to the algebra's fundamental operators and transparently uses a
:class:`~repro.engine.preagg.PreAggregateStore` for summarizable
roll-ups.

Example::

    rows = (Query(mo)
            .dice("Residence", region_value)
            .rollup("Diagnosis", "Diagnosis Group")
            .counts())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    conjunction,
    select,
)
from repro.algebra.functions import AggregationFunction
from repro.core.errors import SchemaError
from repro.core.helpers import make_result_spec
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.values import DimensionValue
from repro.engine.preagg import PreAggregateStore

__all__ = ["Query", "QueryResultRow"]

QueryResultRow = Tuple[Dict[str, DimensionValue], object]


class Query:
    """A fluent OLAP query over one MO.

    Queries are immutable: each builder method returns a new query.
    """

    def __init__(self, mo: MultidimensionalObject,
                 store: Optional[PreAggregateStore] = None) -> None:
        self._mo = mo
        self._store = store
        self._dices: List[Tuple[str, DimensionValue]] = []
        self._grouping: Dict[str, str] = {}

    def _clone(self) -> "Query":
        q = Query(self._mo, self._store)
        q._dices = list(self._dices)
        q._grouping = dict(self._grouping)
        return q

    def dice(self, dimension_name: str, value: DimensionValue) -> "Query":
        """Keep only facts characterized by ``value``."""
        if dimension_name not in self._mo.schema:
            raise SchemaError(f"unknown dimension {dimension_name!r}")
        q = self._clone()
        q._dices.append((dimension_name, value))
        return q

    def rollup(self, dimension_name: str, category_name: str) -> "Query":
        """Group the named dimension at ``category_name``."""
        dtype = self._mo.dimension(dimension_name).dtype
        if category_name not in dtype:
            raise SchemaError(
                f"dimension {dimension_name!r} has no category "
                f"{category_name!r}"
            )
        q = self._clone()
        q._grouping[dimension_name] = category_name
        return q

    def _diced_mo(self) -> MultidimensionalObject:
        if not self._dices:
            return self._mo
        predicates = [characterized_by(d, v) for d, v in self._dices]
        return select(self._mo, conjunction(*predicates))

    def execute(self, function: Optional[AggregationFunction] = None,
                strict_types: bool = False) -> List[QueryResultRow]:
        """Run the query: dice, then aggregate with ``function``
        (default set-count), returning ``(group values, result)`` rows
        sorted by group.

        When no dice is applied, the store is consulted first: a stored
        finer aggregate that is safely combinable answers the query
        without touching base data.
        """
        function = function or SetCount()
        if self._store is not None and not self._dices:
            fast = self._try_store(function)
            if fast is not None:
                return fast
        indexed = self._try_index(function, strict_types)
        if indexed is not None:
            return indexed
        mo = self._diced_mo()
        result = make_result_spec(name="__query_result")
        aggregated = aggregate(mo, function, self._grouping, result,
                               strict_types=strict_types)
        rows: List[QueryResultRow] = []
        names = sorted(self._grouping)
        for fact in aggregated.facts:
            raw = next(
                iter(aggregated.relation("__query_result").values_of(fact))
            ).sid
            # α merges value combinations that select the same facts
            # into one set-fact related to several values; the tabular
            # view re-expands them, one row per combination
            combos: List[Dict[str, DimensionValue]] = [{}]
            for name in names:
                values = sorted(
                    aggregated.relation(name).values_of(fact), key=repr)
                combos = [
                    {**combo, name: value}
                    for combo in combos for value in values
                ]
            for group in combos:
                rows.append((group, raw))
        rows.sort(key=lambda row: tuple(
            repr(row[0][name]) for name in names))
        return rows

    def _try_index(
        self, function: AggregationFunction, strict_types: bool
    ) -> Optional[List[QueryResultRow]]:
        """Answer simple set-count roll-ups straight from the MO's
        rollup index: one closure-map lookup per value instead of a full
        aggregate formation and result-MO construction.

        Only taken when it is provably equivalent to the α path: no
        dices, an untimed (snapshot) MO, at most one grouped dimension,
        and the plain set-count function.
        """
        if self._dices or self._mo.kind is not TimeKind.SNAPSHOT:
            return None
        if len(self._grouping) > 1 or type(function) is not SetCount:
            return None
        if not function.check_applicable(self._mo, strict=strict_types):
            return None  # let α issue its summarizability warning
        if not self._mo.facts:
            return []
        if not self._grouping:
            return [({}, len(self._mo.facts))]
        (name, category), = self._grouping.items()
        char_map = self._mo.rollup_index().characterization_map(
            name, category)
        rows: List[QueryResultRow] = [
            ({name: value}, len(facts))
            for value, facts in char_map.items()
            if facts
        ]
        rows.sort(key=lambda row: repr(row[0][name]))
        return rows

    def _try_store(
        self, function: AggregationFunction
    ) -> Optional[List[QueryResultRow]]:
        assert self._store is not None
        for source, fname, materialized in list(self._store.entries()):
            if fname != function.name:
                continue
            if set(source) != set(self._grouping):
                continue
            if source == self._grouping:
                return self._rows_from(materialized.results, sorted(source))
            if self._store.can_roll_up(materialized, function,
                                       self._grouping):
                combined = self._store.roll_up(function, source,
                                               self._grouping)
                return self._rows_from(combined, sorted(self._grouping))
        return None

    def _rows_from(self, results, names) -> List[QueryResultRow]:
        rows: List[QueryResultRow] = []
        for combo, value in results.items():
            group = dict(zip(names, combo))
            rows.append((group, value))
        rows.sort(key=lambda row: tuple(
            repr(row[0][name]) for name in sorted(self._grouping)))
        return rows

    def counts(self) -> List[QueryResultRow]:
        """Shorthand for ``execute(SetCount())``."""
        return self.execute(SetCount())
