"""A high-level OLAP query API over MOs.

The paper's future work asks how the model could back an OLAP tool;
:class:`Query` is a small fluent layer — dice / slice / roll-up — that
compiles to the algebra's fundamental operators and transparently uses a
:class:`~repro.engine.preagg.PreAggregateStore` for summarizable
roll-ups.

Example::

    rows = (Query(mo)
            .dice("Residence", region_value)
            .rollup("Diagnosis", "Diagnosis Group")
            .counts())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    conjunction,
    select,
)
from repro.algebra.functions import AggregationFunction
from repro.core.errors import SchemaError
from repro.core.helpers import make_result_spec
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.values import DimensionValue
from repro.engine import result_cache as result_cache_module
from repro.engine.backends import ExecutionBackend, dispatch, resolve_backend
from repro.engine.plan_fingerprint import (
    PlanFingerprint,
    Unfingerprintable,
    fingerprint,
)
from repro.engine.preagg import PreAggregateStore
from repro.engine.result_cache import ResultCache, version_vector
from repro.obs import metrics, trace

__all__ = ["Query", "QueryResultRow", "ExplainStep", "QueryExplain"]

QueryResultRow = Tuple[Dict[str, DimensionValue], object]

def _row_sort_key(names):
    """Deterministic row order shared by every answer path: the value
    combination's reprs, then the aggregate value's repr — distinct
    merged groups can present the same combination (an imprecise
    multi-valued fact re-expanded next to a precise neighbour), and
    without the value tiebreak their relative order would be the
    producing path's iteration order."""
    def key(row):
        group, value = row
        return (tuple(repr(group[name]) for name in names), repr(value))
    return key


_PATH_STORE = metrics.counter("query.path.store")
_PATH_INDEX = metrics.counter("query.path.index")
_PATH_ALPHA = metrics.counter("query.path.alpha")
_CACHE_BYPASS = metrics.counter("query.cache.bypass")


@dataclass
class ExplainStep:
    """One evaluated step of a query, annotated with its measurements.

    ``facts_in`` is how many base facts the step had to look at (0 when
    it answered purely from stored results), ``facts_out`` how many
    facts/rows it produced.
    """

    name: str
    elapsed_seconds: float
    facts_in: int
    facts_out: int
    detail: str = ""

    def render(self) -> str:
        """One line: name, fact flow, elapsed, detail."""
        extra = f"  ({self.detail})" if self.detail else ""
        return (f"{self.name}  facts {self.facts_in} -> {self.facts_out}"
                f"  {self.elapsed_seconds * 1e3:.3f}ms{extra}")


@dataclass
class QueryExplain:
    """The EXPLAIN ANALYZE view of one executed query: the answer path
    taken (``store`` / ``index`` / ``alpha``), per-step timings and
    fact counts, and the rows themselves (the query *was* executed —
    this is analysis, not estimation)."""

    path: str
    rows: List[QueryResultRow]
    steps: List[ExplainStep] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Total measured time across steps."""
        return sum(step.elapsed_seconds for step in self.steps)

    def render(self) -> str:
        """A text block: header plus one indented line per step."""
        lines = [
            f"Query path={self.path} rows={len(self.rows)} "
            f"total={self.total_seconds * 1e3:.3f}ms"
        ]
        lines.extend("  " + step.render() for step in self.steps)
        return "\n".join(lines)


class Query:
    """A fluent OLAP query over one MO.

    Queries are immutable: each builder method returns a new query.
    """

    def __init__(self, mo: MultidimensionalObject,
                 store: Optional[PreAggregateStore] = None,
                 result_cache: Optional[ResultCache] = None) -> None:
        self._mo = mo
        self._store = store
        self._result_cache = result_cache
        self._dices: List[Tuple[str, DimensionValue]] = []
        self._grouping: Dict[str, str] = {}
        # fingerprint memo: the query is immutable, so the canonical
        # plan only varies with (function, strict_types) — computing it
        # once keeps the cache-hit path microseconds, not milliseconds
        self._fingerprints: Dict[Tuple[str, bool],
                                 Tuple[Optional[PlanFingerprint], str]] = {}

    def _clone(self) -> "Query":
        q = Query(self._mo, self._store, self._result_cache)
        q._dices = list(self._dices)
        q._grouping = dict(self._grouping)
        return q

    def dice(self, dimension_name: str, value: DimensionValue) -> "Query":
        """Keep only facts characterized by ``value``."""
        if dimension_name not in self._mo.schema:
            raise SchemaError(f"unknown dimension {dimension_name!r}")
        q = self._clone()
        q._dices.append((dimension_name, value))
        return q

    def rollup(self, dimension_name: str, category_name: str) -> "Query":
        """Group the named dimension at ``category_name``."""
        dtype = self._mo.dimension(dimension_name).dtype
        if category_name not in dtype:
            raise SchemaError(
                f"dimension {dimension_name!r} has no category "
                f"{category_name!r}"
            )
        q = self._clone()
        q._grouping[dimension_name] = category_name
        return q

    def _diced_mo(self) -> MultidimensionalObject:
        if not self._dices:
            return self._mo
        predicates = [characterized_by(d, v) for d, v in self._dices]
        return select(self._mo, conjunction(*predicates))

    def to_plan(self, function: Optional[AggregationFunction] = None,
                strict_types: bool = False):
        """The query compiled to an algebra plan
        (:mod:`repro.engine.optimizer` nodes): the dices as σ nodes
        over :class:`Base`, topped by the α node — the tree the static
        analyzer checks and :func:`~repro.engine.optimizer.evaluate`
        could run."""
        from repro.engine.optimizer import AggregateNode, Base, SelectNode
        plan = Base(self._mo)
        for name, value in self._dices:
            plan = SelectNode(child=plan,
                              predicate=characterized_by(name, value))
        return AggregateNode(
            child=plan,
            function=function or SetCount(),
            grouping=tuple(sorted(self._grouping.items())),
            result=make_result_spec(name="__query_result"),
            strict_types=strict_types,
        )

    def _sql_plan(self, function: AggregationFunction,
                  strict_types: bool):
        """The plan the SQL backend compiles.  Unlike :meth:`to_plan`'s
        one-σ-per-dice chain, all dices form a *single* σ carrying their
        conjunction — the same shape :meth:`_diced_mo` evaluates, where
        several dices on one dimension must be satisfied by one shared
        witness value.  (Chained σs re-quantify the witness per node.)"""
        from repro.engine.optimizer import AggregateNode, Base, SelectNode
        plan = Base(self._mo)
        if self._dices:
            predicates = [characterized_by(d, v) for d, v in self._dices]
            plan = SelectNode(child=plan,
                              predicate=conjunction(*predicates))
        return AggregateNode(
            child=plan,
            function=function,
            grouping=tuple(sorted(self._grouping.items())),
            result=make_result_spec(name="__query_result"),
            strict_types=strict_types,
        )

    def check(self, function: Optional[AggregationFunction] = None,
              strict_types: bool = False):
        """Statically analyze the query before running it: compile to a
        plan and hand it to :func:`repro.analyze.analyze_plan` plus the
        MD07x shard-safety pass
        (:func:`repro.analyze.analyze_shardability`).  Returns the
        merged :class:`~repro.analyze.AnalysisReport`, deterministically
        ordered; raises nothing — the caller (or :meth:`execute`'s
        default ``check=True``) decides what to do with error
        findings."""
        from repro.analyze import analyze_plan, analyze_shardability
        plan = self.to_plan(function, strict_types)
        report = analyze_plan(plan)
        report.extend(analyze_shardability(plan))
        return report.sort()

    def execute(self, function: Optional[AggregationFunction] = None,
                strict_types: bool = False,
                check: bool = True,
                backend: Union[str, ExecutionBackend] = "memory",
                cache: bool = True) -> List[QueryResultRow]:
        """Run the query: dice, then aggregate with ``function``
        (default set-count), returning ``(group values, result)`` rows
        sorted by group.

        When no dice is applied, the store is consulted first: a stored
        finer aggregate that is safely combinable answers the query
        without touching base data.

        ``backend`` names an :class:`~repro.engine.backends
        .ExecutionBackend` from the registry (or passes a configured
        instance directly).  ``"sql"`` pushes the compiled plan down to
        the relational backend (:mod:`repro.relational.backend`); plans
        outside the pushable subset transparently fall back to the
        in-memory path (counted as ``sql.pushdown.fallback``).
        ``"sharded"`` evaluates the α on a process pool — admitted only
        for plans the shard-safety analyzer proves SHARDABLE, raising
        :class:`~repro.engine.backends.BackendRefused` with the MD07x
        diagnostic otherwise.  Every backend's rows are byte-identical.

        ``cache=True`` (the default) consults the versioned result
        cache (:mod:`repro.engine.result_cache`) before running any
        answer path, keyed by the canonical plan fingerprint and the
        MO's mutation-counter vector — a mutation simply misses.  Pass
        ``cache=False`` to bypass (counted as ``query.cache.bypass``).

        ``check=True`` (the default) runs :meth:`check` first and
        raises :class:`~repro.core.errors.StaticAnalysisError` if the
        analyzer finds error-severity diagnostics — i.e. evaluations
        guaranteed to fail; pass ``check=False`` to opt out and let the
        runtime operators raise instead.
        """
        resolved = resolve_backend(backend)
        if check:
            report = self.check(function, strict_types)
            if report.has_errors:
                from repro.core.errors import StaticAnalysisError
                raise StaticAnalysisError(
                    "query rejected by static analysis:\n" + report.render(),
                    diagnostics=report.errors)
        rows, _ = self._answer(function or SetCount(), strict_types,
                               None, resolved, cache)
        return rows

    def explain(self, function: Optional[AggregationFunction] = None,
                strict_types: bool = False,
                backend: Union[str, ExecutionBackend] = "memory",
                cache: bool = True) -> QueryExplain:
        """Execute the query and report *how* it was answered: the path
        taken (``cache`` / ``store`` / ``index`` / ``alpha`` / ``sql``
        / ``sharded``), and per-step elapsed time and in/out fact
        counts — the engine's EXPLAIN ANALYZE.  A ``cache`` step names
        the fingerprint and whether it hit, missed, or was bypassed by
        an unfingerprintable construct (explicit ``cache=False`` keeps
        the steps to the execution pipeline alone).  With
        ``backend="sql"`` the steps include the emitted SQL per
        compiled plan node (or the fallback reason); with
        ``backend="sharded"`` they show the shard plan, the pool map,
        and the merge."""
        resolved = resolve_backend(backend)
        steps: List[ExplainStep] = []
        rows, path = self._answer(function or SetCount(), strict_types,
                                  steps, resolved, cache)
        return QueryExplain(path=path, rows=rows, steps=steps)

    def _fingerprint(self, function: AggregationFunction,
                     strict_types: bool
                     ) -> Tuple[Optional[PlanFingerprint], str]:
        """The memoized canonical fingerprint of this query's plan (the
        single-conjunction σ shape :meth:`_diced_mo` actually
        evaluates), or ``(None, reason)`` when unfingerprintable."""
        key = (function.name, strict_types)
        found = self._fingerprints.get(key)
        if found is None:
            try:
                found = (fingerprint(self._sql_plan(function,
                                                    strict_types)), "")
            except Unfingerprintable as exc:
                found = (None, f"{exc.reason} ({exc.location})")
            self._fingerprints[key] = found
        return found

    def _answer(
        self,
        function: AggregationFunction,
        strict_types: bool,
        steps: Optional[List[ExplainStep]],
        backend: ExecutionBackend,
        cache: bool,
    ) -> Tuple[List[QueryResultRow], str]:
        """The cache wrapper around every answer path: fingerprint the
        plan, consult the versioned cache, and on a miss dispatch to
        the backend (with its refusal → fallback protocol) and admit
        the result.  The cache key is backend-independent — every
        backend's rows are byte-identical, so an entry computed by one
        serves them all."""
        def runner(function, strict_types, steps):
            return dispatch(self, backend, function, strict_types, steps)
        if not cache:
            # explicit opt-out: count it, but keep the explain output
            # free of a cache step so ``explain(cache=False)`` shows
            # exactly the execution pipeline
            _CACHE_BYPASS.inc()
            return runner(function, strict_types, steps)
        t0 = time.perf_counter()
        fp, reason = self._fingerprint(function, strict_types)
        if fp is None:
            _CACHE_BYPASS.inc()
            if steps is not None:
                steps.append(ExplainStep(
                    name="cache", detail=f"bypass: {reason}",
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=0, facts_out=0))
            return runner(function, strict_types, steps)
        store = self._result_cache if self._result_cache is not None \
            else result_cache_module.DEFAULT_CACHE
        versions = tuple(version_vector(mo) for mo in fp.mos)
        hit = store.get(fp.digest, versions)
        if hit is not None:
            if steps is not None:
                steps.append(ExplainStep(
                    name="cache",
                    detail=f"hit: fingerprint={fp.short}",
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=0, facts_out=len(hit)))
            return hit, "cache"
        t1 = time.perf_counter()
        rows, path = runner(function, strict_types, steps)
        compute_seconds = time.perf_counter() - t1
        store.put(fp.digest, versions, tuple(sorted(self._grouping)),
                  rows, compute_seconds)
        if steps is not None:
            steps.append(ExplainStep(
                name="cache",
                detail=f"miss: fingerprint={fp.short}, stored",
                elapsed_seconds=t1 - t0,
                facts_in=0, facts_out=0))
        return rows, path

    def _run(
        self,
        function: AggregationFunction,
        strict_types: bool,
        steps: Optional[List[ExplainStep]],
    ) -> Tuple[List[QueryResultRow], str]:
        """The one evaluation pipeline behind :meth:`execute` and
        :meth:`explain`: try the store, then the index fast path, then
        the full α evaluation, recording a step per evaluated node when
        ``steps`` is given."""
        with trace.span("query.execute",
                        grouping=tuple(sorted(self._grouping)),
                        n_dices=len(self._dices), function=function.name):
            if self._store is not None and not self._dices:
                t0 = time.perf_counter()
                fast = self._try_store(function)
                if fast is not None:
                    rows, detail = fast
                    _PATH_STORE.inc()
                    if steps is not None:
                        steps.append(ExplainStep(
                            name="store", detail=detail,
                            elapsed_seconds=time.perf_counter() - t0,
                            facts_in=0, facts_out=len(rows)))
                    return rows, "store"
            t0 = time.perf_counter()
            indexed = self._try_index(function, strict_types)
            if indexed is not None:
                _PATH_INDEX.inc()
                if steps is not None:
                    steps.append(ExplainStep(
                        name="index",
                        detail="rollup-index characterization map",
                        elapsed_seconds=time.perf_counter() - t0,
                        facts_in=len(self._mo.facts),
                        facts_out=len(indexed)))
                return indexed, "index"
            _PATH_ALPHA.inc()
            t0 = time.perf_counter()
            mo = self._diced_mo()
            if steps is not None and self._dices:
                steps.append(ExplainStep(
                    name="dice",
                    detail=", ".join(f"{d}={v!r}" for d, v in self._dices),
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=len(self._mo.facts),
                    facts_out=len(mo.facts)))
            t0 = time.perf_counter()
            rows, n_groups = self._run_alpha(mo, function, strict_types)
            if steps is not None:
                steps.append(ExplainStep(
                    name="alpha",
                    detail=f"{function.name} over "
                           f"{dict(sorted(self._grouping.items()))}",
                    elapsed_seconds=time.perf_counter() - t0,
                    facts_in=len(mo.facts), facts_out=n_groups))
            return rows, "alpha"

    def _run_alpha(
        self, mo: MultidimensionalObject, function: AggregationFunction,
        strict_types: bool,
    ) -> Tuple[List[QueryResultRow], int]:
        """Full aggregate formation; returns the rows and the number of
        groups (result facts) α produced."""
        result = make_result_spec(name="__query_result")
        aggregated = aggregate(mo, function, self._grouping, result,
                               strict_types=strict_types)
        rows: List[QueryResultRow] = []
        names = sorted(self._grouping)
        for fact in aggregated.facts:
            raw = next(
                iter(aggregated.relation("__query_result").values_of(fact))
            ).sid
            # α merges value combinations that select the same facts
            # into one set-fact related to several values; the tabular
            # view re-expands them, one row per combination
            combos: List[Dict[str, DimensionValue]] = [{}]
            for name in names:
                values = sorted(
                    aggregated.relation(name).values_of(fact), key=repr)
                combos = [
                    {**combo, name: value}
                    for combo in combos for value in values
                ]
            for group in combos:
                rows.append((group, raw))
        rows.sort(key=_row_sort_key(names))
        return rows, len(aggregated.facts)

    def _try_index(
        self, function: AggregationFunction, strict_types: bool
    ) -> Optional[List[QueryResultRow]]:
        """Answer simple set-count roll-ups straight from the MO's
        rollup index: one closure-map lookup per value instead of a full
        aggregate formation and result-MO construction.

        Only taken when it is provably equivalent to the α path: no
        dices, an untimed (snapshot) MO, at most one grouped dimension,
        and the plain set-count function.
        """
        if self._dices or self._mo.kind is not TimeKind.SNAPSHOT:
            return None
        if len(self._grouping) > 1 or type(function) is not SetCount:
            return None
        if not function.check_applicable(self._mo, strict=strict_types):
            return None  # let α issue its summarizability warning
        if not self._mo.facts:
            return []
        if not self._grouping:
            return [({}, len(self._mo.facts))]
        (name, category), = self._grouping.items()
        char_map = self._mo.rollup_index().characterization_map(
            name, category)
        rows: List[QueryResultRow] = [
            ({name: value}, len(facts))
            for value, facts in char_map.items()
            if facts
        ]
        rows.sort(key=lambda row: repr(row[0][name]))
        return rows

    def _try_store(
        self, function: AggregationFunction
    ) -> Optional[Tuple[List[QueryResultRow], str]]:
        """Answer from the pre-aggregate store if a fresh stored
        aggregate matches exactly or combines safely; returns the rows
        plus a human-readable description of the hit, or None."""
        assert self._store is not None
        for source, fname, materialized in list(self._store.entries()):
            if fname != function.name:
                continue
            if set(source) != set(self._grouping):
                continue
            if source == self._grouping:
                return (self._rows_from(materialized.results,
                                        materialized.groups,
                                        sorted(source)),
                        f"exact hit: {function.name} @ "
                        f"{dict(sorted(source.items()))}")
            if self._store.can_roll_up(materialized, function,
                                       self._grouping):
                combined, groups = self._store.rolled_up(
                    function, source, self._grouping)
                return (self._rows_from(combined, groups,
                                        sorted(self._grouping)),
                        f"rolled up from {dict(sorted(source.items()))}")
        return None

    def _rows_from(self, results, groups, names) -> List[QueryResultRow]:
        """Stored cells as rows, in α's presentation: value combinations
        selecting the same facts merge into one group (α identifies a
        set-fact by its members), and the tabular view re-expands the
        cross product of the merged per-dimension value sets — without
        the merge, an imprecise multi-valued fact yields rows the α
        path would have folded into (and re-expanded differently from)
        its neighbours."""
        merged: Dict[frozenset, Tuple[List[set], object]] = {}
        for combo, value in results.items():
            key = frozenset(groups[combo])
            entry = merged.get(key)
            if entry is None:
                entry = merged[key] = ([set() for _ in names], value)
            for value_set, combo_value in zip(entry[0], combo):
                value_set.add(combo_value)
        rows: List[QueryResultRow] = []
        for value_sets, value in merged.values():
            combos: List[Dict[str, DimensionValue]] = [{}]
            for name, value_set in zip(names, value_sets):
                combos = [
                    {**combo, name: each}
                    for combo in combos
                    for each in sorted(value_set, key=repr)
                ]
            rows.extend((combo, value) for combo in combos)
        rows.sort(key=_row_sort_key(names))
        return rows

    def counts(self) -> List[QueryResultRow]:
        """Shorthand for ``execute(SetCount())``."""
        return self.execute(SetCount())
