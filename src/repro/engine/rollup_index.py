"""The rollup-index layer: interned ids + cached closures for grouping
(paper §5 future work: "how the model can be efficiently implemented
using special-purpose algorithms and data structures").

Every operation that groups facts — aggregate formation, drill-across,
imprecision analysis, time-series counts, cube materialization —
ultimately needs the characterization relation ``f ⇝ e`` for whole
categories of values.  The naive evaluation
(:meth:`repro.core.factdim.FactDimensionRelation.facts_characterized_by`)
re-walks the dimension's partial order once per value per query.  A
:class:`RollupIndex` instead:

* **interns** facts and dimension values to dense integer ids
  (:class:`repro.core.interning.InternTable`), so closure tables are
  plain ``int``-set unions and deterministic orderings come from ids;
* **precomputes** one ``value → facts-characterized`` closure table per
  dimension in a single children-first topological sweep of the
  dimension's :class:`~repro.core.order.AnnotatedOrder`
  (``closure(e) = facts(e) ∪ ⋃ closure(child)``), instead of one DFS
  per queried value;
* is **versioned and lazily invalidated**: it snapshots each
  dimension's order and relation mutation counters at build time and
  rebuilds *only the dirty dimensions*, on the next query after a
  mutation.  Obtain the shared instance for an MO through
  :meth:`repro.core.mo.MultidimensionalObject.rollup_index`.

Temporal queries (``at=`` a chronon) take the closure table only as the
candidate set and re-apply the exact per-fact temporal test of the naive
path, so indexed and naive results agree on every input; the equivalence
property tests in ``tests/engine/test_rollup_index.py`` assert this
against the naive oracle.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.dimension import Dimension
from repro.core.errors import InstanceError
from repro.core.factdim import FactDimensionRelation
from repro.core.interning import InternTable
from repro.core.properties import SummarizabilityCheck, check_summarizability
from repro.core.values import DimensionValue, Fact
from repro.obs import metrics, trace
from repro.temporal.chronon import Chronon

__all__ = ["RollupIndex", "UNCHARACTERIZED", "MULTI_VALUED"]

#: sentinel in a per-fact value-id array: the fact has no grouping-
#: category value in this dimension (it drops out of the grouping).
UNCHARACTERIZED = -1
#: sentinel in a per-fact value-id array: the fact has *several*
#: grouping-category values (imprecise characterization) — look the
#: id-sorted tuple up in the side map and product-expand.
MULTI_VALUED = -2

# metric objects are cached at import so the hot paths pay one float add
# (see docs/OBSERVABILITY.md for the catalogue)
_BUILDS = metrics.counter("rollup_index.builds")
_BUILD_CAUSES = {
    cause: metrics.counter(f"rollup_index.build_cause.{cause}")
    for cause in ("new", "order", "relation", "order+relation")
}
_CHAR_MAP_HIT = metrics.counter("rollup_index.char_map.hit")
_CHAR_MAP_MISS = metrics.counter("rollup_index.char_map.miss")
_PER_FACT_HIT = metrics.counter("rollup_index.per_fact_map.hit")
_PER_FACT_MISS = metrics.counter("rollup_index.per_fact_map.miss")
_SUMM_HIT = metrics.counter("rollup_index.summarizability.hit")
_SUMM_MISS = metrics.counter("rollup_index.summarizability.miss")
_DELTA_APPLIED = metrics.counter("rollup_index.delta_applied")
_DELTA_OPS = metrics.histogram("rollup_index.delta.batch_ops")
_COVERAGE_HIT = metrics.counter("rollup_index.coverage.hit")
_COVERAGE_MISS = metrics.counter("rollup_index.coverage.miss")
_STRICT_HIT = metrics.counter("rollup_index.strictness.hit")
_STRICT_MISS = metrics.counter("rollup_index.strictness.miss")
_SUMM_STATIC = metrics.counter("rollup_index.summarizability.static_fast_path")

_EMPTY_IDS: FrozenSet[int] = frozenset()


class _DimensionIndex:
    """The closure tables of one dimension, valid for one version pair."""

    __slots__ = (
        "order_version",
        "relation_version",
        "values",
        "closure",
        "fact_sets",
        "category_maps",
        "per_fact_maps",
        "per_fact_id_maps",
        "id_array_maps",
        "nonempty_maps",
    )

    def __init__(
        self,
        order_version: int,
        relation_version: int,
        values: InternTable,
        closure: Dict[int, FrozenSet[int]],
    ) -> None:
        self.order_version = order_version
        self.relation_version = relation_version
        self.values = values
        #: interned value id → interned ids of the facts it characterizes
        self.closure = closure
        #: lazily materialized object-level views of ``closure``
        self.fact_sets: Dict[int, FrozenSet[Fact]] = {}
        #: category name → (value → facts) map, built on demand
        self.category_maps: \
            Dict[str, Dict[DimensionValue, FrozenSet[Fact]]] = {}
        #: category name → (fact → id-sorted values) map, built on demand
        self.per_fact_maps: Dict[str, Dict[Fact, List[DimensionValue]]] = {}
        #: category name → (fact id → id-sorted value-id tuple), the
        #: all-integer view the aggregate hot loop runs on
        self.per_fact_id_maps: Dict[str, Dict[int, Tuple[int, ...]]] = {}
        #: category name → (dense fact_id→value_id ``array('q')``,
        #: multi-valued side map) — the columnar kernel's input; see
        #: :meth:`RollupIndex.grouping_value_id_array`
        self.id_array_maps: Dict[
            str, Tuple[array, Dict[int, Tuple[int, ...]]]] = {}
        #: category name → the non-empty fact sets of its members (the
        #: cuboid-sizing fast path; see
        #: :meth:`RollupIndex.nonempty_fact_sets`)
        self.nonempty_maps: Dict[str, List[FrozenSet[Fact]]] = {}

    def is_fresh(self, dimension: Dimension,
                 relation: FactDimensionRelation) -> bool:
        return (self.order_version == dimension.order.version
                and self.relation_version == relation.version)


def _build_dimension_index(
    dimension: Dimension,
    relation: FactDimensionRelation,
    values: InternTable,
    facts: InternTable,
) -> _DimensionIndex:
    """One topological sweep: closure(e) = facts(e) ∪ ⋃ closure(child).

    The sweep visits children before parents, so each value's closure is
    one base lookup plus set unions of already-final child closures —
    O(edges × avg-closure) for the whole dimension, versus one DFS per
    value on the naive path.
    """
    order = dimension.order
    order_version = order.version
    relation_version = relation.version
    by_node: Dict[DimensionValue, FrozenSet[int]] = {}
    for node in order.topological():
        acc: Set[int] = {facts.intern(f) for f in relation.facts_of(node)}
        for child in order.children(node):
            acc |= by_node[child]
        by_node[node] = frozenset(acc)
    # ⊤ contains every value of the dimension, with no materialized
    # edges; its closure is the whole relation's fact set
    all_facts = frozenset(facts.intern(f) for f in relation.facts())
    by_node[dimension.top_value] = all_facts
    # values mentioned by the relation but absent from the order (possible
    # on hand-built, not-yet-validated relations) characterize only their
    # directly related facts — matching the naive empty-descendants walk
    for value in relation.values():
        if value not in by_node:
            by_node[value] = frozenset(
                facts.intern(f) for f in relation.facts_of(value))
    closure = {values.intern(node): fact_ids
               for node, fact_ids in by_node.items()}
    return _DimensionIndex(order_version, relation_version, values, closure)


class RollupIndex:
    """Interned, versioned closure tables for one MO's grouping paths.

    One instance serves all dimensions of the MO; per-dimension tables
    are built lazily on first use and rebuilt lazily when the
    dimension's order or relation mutation counter has moved.  All query
    methods return freshly usable objects (frozensets / read-only maps)
    whose contents always reflect the MO's current state.
    """

    def __init__(self, mo) -> None:
        self._mo = mo
        self._facts = InternTable()
        self._value_tables: Dict[str, InternTable] = {}
        self._dims: Dict[str, _DimensionIndex] = {}
        self._verdicts: Dict[tuple, SummarizabilityCheck] = {}
        self._coverage: Dict[tuple, bool] = {}
        self._strictness: Dict[tuple, bool] = {}
        self._mo_fact_ids: Optional[FrozenSet[int]] = None
        self._mo_facts_version = -1
        self._columnar = None
        self._builds = 0
        self._deltas = 0
        #: apply small mutations as closure deltas instead of per-
        #: dimension rebuilds; disable to force the full-rebuild path
        #: (the benchmarks and the delta-equivalence tests do).
        self.delta_enabled = True

    @property
    def mo(self):
        """The indexed MO."""
        return self._mo

    @property
    def build_count(self) -> int:
        """How many per-dimension builds have run (observability for
        tests and benchmarks: mutations should rebuild exactly the dirty
        dimensions, repeated queries none)."""
        return self._builds

    @property
    def delta_count(self) -> int:
        """How many mutation batches were applied as deltas (closure
        patches) instead of per-dimension rebuilds."""
        return self._deltas

    # -- freshness ---------------------------------------------------------

    def _entry(self, dimension_name: str) -> _DimensionIndex:
        dimension = self._mo.dimension(dimension_name)
        relation = self._mo.relation(dimension_name)
        entry = self._dims.get(dimension_name)
        if entry is not None and entry.is_fresh(dimension, relation):
            return entry
        if (entry is not None and self.delta_enabled
                and self._apply_delta(dimension_name, entry,
                                      dimension, relation)):
            return entry
        cause = self._rebuild_cause(entry, dimension, relation)
        values = self._value_tables.setdefault(dimension_name, InternTable())
        with trace.span("rollup_index.build", dimension=dimension_name,
                        cause=cause):
            entry = _build_dimension_index(dimension, relation, values,
                                           self._facts)
        self._dims[dimension_name] = entry
        self._builds += 1
        _BUILDS.inc()
        _BUILD_CAUSES[cause].inc()
        return entry

    @staticmethod
    def _rebuild_cause(entry: Optional[_DimensionIndex],
                       dimension: Dimension,
                       relation: FactDimensionRelation) -> str:
        """Why a (re)build is happening: first build, a dirty order, a
        dirty relation, or both — the per-cause counters turn "the
        benchmark got slower" into "a rebuild storm on dimension X"."""
        if entry is None:
            return "new"
        order_dirty = entry.order_version != dimension.order.version
        relation_dirty = entry.relation_version != relation.version
        if order_dirty and relation_dirty:
            return "order+relation"
        return "order" if order_dirty else "relation"

    # -- incremental (delta) maintenance -----------------------------------

    def _apply_delta(self, dimension_name: str, entry: _DimensionIndex,
                     dimension: Dimension,
                     relation: FactDimensionRelation) -> bool:
        """Patch a stale entry's closures from the mutation logs instead
        of rebuilding — true on success.

        Delta-able mutations are pure additions: a relation pair add
        puts one fact id into the closures of the value and its (final-
        order) ancestors plus ⊤; an order edge add flows the child's
        closure into the parent and the parent's (final-order)
        ancestors.  Relation adds are applied first, then edges in
        insertion order, every step against the *final* order — each
        newly reachable ``value → fact`` path is then covered by the
        latest-inserted edge on it (or directly, for new facts).
        Removals log barriers and fall back to the full rebuild, as do
        spans the bounded logs no longer cover and batches so large the
        one-sweep rebuild is the cheaper computation.
        """
        order = dimension.order
        order_ops = order.change_log.since(entry.order_version,
                                           order.version)
        relation_ops = relation.change_log.since(entry.relation_version,
                                                 relation.version)
        if order_ops is None or relation_ops is None:
            return False
        n_ops = len(order_ops) + len(relation_ops)
        if n_ops > max(16, len(entry.closure) // 2):
            return False  # bulk mutation: the one-sweep rebuild wins
        facts = self._facts
        values = entry.values
        closure = entry.closure
        top = dimension.top_value
        affected: Set[DimensionValue] = set()
        with trace.span("rollup_index.delta", dimension=dimension_name,
                        ops=n_ops):
            for op in relation_ops:  # ("add", fact, value)
                _, fact, value = op
                fid = facts.intern(fact)
                targets = {value, top}
                if value in order:
                    targets |= order.ancestors(value)
                for target in targets:
                    vid = values.intern(target)
                    closure[vid] = closure.get(vid, _EMPTY_IDS) | {fid}
                affected |= targets
            for op in order_ops:  # ("node", n) | ("edge", child, parent)
                if op[0] == "node":
                    # no closure flow, but the node's category map must
                    # be rebuilt to show the new (empty) member
                    affected.add(op[1])
                    continue
                _, child, parent = op
                child_vid = values.id_of(child)
                flowing = (closure.get(child_vid, _EMPTY_IDS)
                           if child_vid is not None else _EMPTY_IDS)
                targets = order.ancestors(parent, reflexive=True)
                if flowing:
                    for target in targets:
                        vid = values.intern(target)
                        existing = closure.get(vid, _EMPTY_IDS)
                        closure[vid] = existing | flowing
                affected |= targets
            self._evict_affected(entry, dimension, affected)
        entry.order_version = order.version
        entry.relation_version = relation.version
        self._deltas += 1
        _DELTA_APPLIED.inc()
        _DELTA_OPS.observe(n_ops)
        return True

    @staticmethod
    def _evict_affected(entry: _DimensionIndex, dimension: Dimension,
                        affected: Set[DimensionValue]) -> None:
        """Surgically drop the lazily built views a delta invalidated:
        the per-value fact-set views of the touched values, and the
        category-level maps of every category containing one.  Values a
        relation mentions outside the dimension (hand-built relations)
        belong to no category, so only their fact-set view drops."""
        categories: Set[str] = set()
        for value in affected:
            vid = entry.values.id_of(value)
            if vid is not None:
                entry.fact_sets.pop(vid, None)
            try:
                categories.add(dimension.category_name_of(value))
            except InstanceError:
                continue
        for category_name in categories:
            entry.category_maps.pop(category_name, None)
            entry.per_fact_maps.pop(category_name, None)
            entry.per_fact_id_maps.pop(category_name, None)
            entry.id_array_maps.pop(category_name, None)
            entry.nonempty_maps.pop(category_name, None)

    def is_fresh(self, dimension_name: str) -> bool:
        """Whether the dimension's table exists and matches the current
        order/relation versions (no query has to rebuild)."""
        entry = self._dims.get(dimension_name)
        return entry is not None and entry.is_fresh(
            self._mo.dimension(dimension_name),
            self._mo.relation(dimension_name))

    def invalidate(self, dimension_name: Optional[str] = None) -> None:
        """Drop cached tables (one dimension, or all).

        Not needed for correctness — mutation counters invalidate lazily
        — but lets callers release memory for large MOs.
        """
        if dimension_name is None:
            self._dims.clear()
        else:
            self._dims.pop(dimension_name, None)

    # -- summarizability ---------------------------------------------------

    def summarizability(self, grouping: Dict[str, str], distributive: bool,
                        at: Optional[Chronon] = None) -> SummarizabilityCheck:
        """The (cached) Lenz-Shoshani verdict for a grouping.

        The check scans the grouped dimensions' hierarchies and base
        mappings, so it dominates repeated aggregate formations; the
        verdict depends only on the grouped dimensions' state, so the
        cache key is the grouping plus those dimensions' order/relation
        version pairs — a mutation anywhere relevant misses the cache
        and re-checks.
        """
        names = tuple(sorted(grouping))
        key = (
            tuple((name, grouping[name]) for name in names),
            distributive,
            at,
            tuple((self._mo.dimension(name).order.version,
                   self._mo.relation(name).version) for name in names),
        )
        verdict = self._verdicts.get(key)
        if verdict is None:
            _SUMM_MISS.inc()
            if at is None and distributive and self._static_safe(grouping):
                # the declared verdict, verified from per-dimension
                # caches, provably matches the full check's outcome
                _SUMM_STATIC.inc()
                verdict = SummarizabilityCheck(
                    function_distributive=True, paths_strict=True,
                    hierarchies_partitioning=True)
            else:
                with trace.span("rollup_index.summarizability",
                                grouping=names):
                    verdict = check_summarizability(self._mo, dict(grouping),
                                                    distributive, at=at)
            self._verdicts[key] = verdict
        else:
            _SUMM_HIT.inc()
        return verdict

    def _static_safe(self, grouping: Dict[str, str]) -> bool:
        """The static (schema-declared) fast path behind
        :meth:`summarizability` — True only when the full extensional
        check is *guaranteed* to return the all-clear verdict, so the
        subdimension construction it performs per grouping can be
        skipped.  Per grouped dimension this requires:

        * the dimension type *declares* strict + partitioning (the
          analyzer's intensional verdict — the gate; undeclared or
          declared-unsafe dimensions always take the full check);
        * the declared partitioning holds extensionally
          (:meth:`hierarchy_partitioning`, cached per order version —
          a drifted declaration falls back rather than being trusted);
        * every category below the grouping category has all its
          immediate predecessors below it too — then the subdimension
          the full check builds preserves Pred sets, so full-hierarchy
          partitioning implies the subhierarchy's;
        * the fact paths up to the grouping category are strict
          (cached one-pass scan of the per-fact grouping map).

        All four pieces are per-dimension (or per dimension+category)
        and version-cached, shared across groupings — unlike the full
        check, which rebuilds a subdimension for every new grouping key.
        """
        for name, cat in grouping.items():
            dimension = self._mo.dimension(name)
            dtype = dimension.dtype
            if not (dtype.declared_strict and dtype.declared_partitioning):
                return False
            if not self.hierarchy_partitioning(name):
                return False
            below = [c.name for c in dimension.categories()
                     if dtype.leq(c.name, cat)]
            for c_name in below:
                if c_name == cat:
                    continue
                if any(not dtype.leq(p, cat) for p in dtype.pred(c_name)):
                    return False
            if not self._fact_paths_strict(name, cat):
                return False
        return True

    def _fact_paths_strict(self, dimension_name: str,
                           category_name: str) -> bool:
        """Definition 2's strict-path condition (no fact characterized
        by two values of the category), answered from the cached
        per-fact grouping map and memoized per version pair."""
        dimension = self._mo.dimension(dimension_name)
        if category_name == dimension.dtype.top_name:
            return True
        key = (dimension_name, "*paths*", category_name,
               dimension.order.version,
               self._mo.relation(dimension_name).version)
        cached = self._strictness.get(key)
        if cached is None:
            per_fact = self.grouping_values_per_fact(dimension_name,
                                                     category_name)
            cached = all(len(values) <= 1 for values in per_fact.values())
            self._strictness[key] = cached
        return cached

    # -- hierarchy properties ----------------------------------------------

    def mapping_strict(self, dimension_name: str, lower_category: str,
                       upper_category: str) -> bool:
        """Definition 2 for one category pair, answered from the cached
        ancestor sets: one ``ancestors(value) ∩ upper-members``
        intersection per lower value, instead of the naive
        O(|lower|·|upper|) per-pair containment scan of
        :func:`repro.core.properties.mapping_is_strict`.  Cached keyed
        by the dimension's order version (category membership bumps the
        order counter too, via ``add_node``)."""
        dimension = self._mo.dimension(dimension_name)
        key = (dimension_name, lower_category, upper_category,
               dimension.order.version)
        cached = self._strictness.get(key)
        if cached is not None:
            _STRICT_HIT.inc()
            return cached
        _STRICT_MISS.inc()
        upper_members = dimension.category(upper_category).members()
        result = True
        for value in dimension.category(lower_category).members():
            parents = dimension.ancestors(value, reflexive=False)
            parents &= upper_members
            parents.discard(value)
            if len(parents) > 1:
                result = False
                break
        self._strictness[key] = result
        return result

    def hierarchy_strict(self, dimension_name: str) -> bool:
        """Definition 2 for the whole dimension: every related category
        pair's mapping is strict.  Built on :meth:`mapping_strict`, so
        repeated queries (the analyzer, the pre-aggregate store) answer
        from the per-pair cache."""
        dimension = self._mo.dimension(dimension_name)
        key = (dimension_name, "*hierarchy*", dimension.order.version)
        cached = self._strictness.get(key)
        if cached is not None:
            _STRICT_HIT.inc()
            return cached
        _STRICT_MISS.inc()
        dtype = dimension.dtype
        names = [c.name for c in dimension.categories()]
        result = all(
            self.mapping_strict(dimension_name, lower, upper)
            for lower in names for upper in names
            if lower != upper and dtype.leq(lower, upper)
        )
        self._strictness[key] = result
        return result

    def hierarchy_partitioning(self, dimension_name: str) -> bool:
        """Definition 3 for the whole dimension, from cached ancestor
        sets (a value is covered iff its ancestors meet some
        immediate-predecessor category, or ⊤ is a predecessor).  Cached
        keyed by the dimension's order version."""
        dimension = self._mo.dimension(dimension_name)
        key = (dimension_name, "*partitioning*", dimension.order.version)
        cached = self._strictness.get(key)
        if cached is not None:
            _STRICT_HIT.inc()
            return cached
        _STRICT_MISS.inc()
        dtype = dimension.dtype
        result = True
        for category in dimension.categories():
            if category.ctype.is_top:
                continue
            pred_names = dtype.pred(category.name)
            if dtype.top_name in pred_names:
                continue  # every value is below ⊤
            pred_members: Set[DimensionValue] = set()
            for pred_name in pred_names:
                pred_members |= dimension.category(pred_name).members()
            for value in category.members():
                parents = dimension.ancestors(value, reflexive=False)
                parents &= pred_members
                parents.discard(value)
                if not parents:
                    result = False
                    break
            if not result:
                break
        self._strictness[key] = result
        return result

    # -- interned orderings ------------------------------------------------

    def value_id(self, dimension_name: str, value: DimensionValue) -> int:
        """The dense interned id of a value (assigning one if unseen).

        Ids are assigned in build/first-seen order and never reused, so
        they are a stable, cheap deterministic sort key — the grouping
        paths order value combinations by id instead of ``repr``.
        """
        table = self._value_tables.setdefault(dimension_name, InternTable())
        return table.intern(value)

    def sort_values(self, dimension_name: str,
                    values: Iterable[DimensionValue]) -> List[DimensionValue]:
        """The values sorted by interned id (the deterministic order the
        grouping paths use)."""
        table = self._value_tables.setdefault(dimension_name, InternTable())
        return sorted(values, key=table.intern)

    # -- characterization queries ------------------------------------------

    def _fact_set(self, entry: _DimensionIndex,
                  value: DimensionValue) -> FrozenSet[Fact]:
        vid = entry.values.id_of(value)
        if vid is None:
            return frozenset()
        fact_ids = entry.closure.get(vid)
        if fact_ids is None:
            return frozenset()
        cached = entry.fact_sets.get(vid)
        if cached is None:
            cached = frozenset(self._facts.objects_of(fact_ids))
            entry.fact_sets[vid] = cached
        return cached

    def facts_characterized_by(
        self,
        dimension_name: str,
        value: DimensionValue,
        at: Optional[Chronon] = None,
    ) -> FrozenSet[Fact]:
        """All facts ``f`` with ``f ⇝ value`` — the indexed counterpart
        of :meth:`FactDimensionRelation.facts_characterized_by`.

        Untimed queries answer straight from the closure table.  Timed
        queries (``at``) take the closure as the candidate set and apply
        the naive per-fact temporal test, so results match the naive
        path exactly.
        """
        entry = self._entry(dimension_name)
        candidates = self._fact_set(entry, value)
        if at is None:
            return candidates
        dimension = self._mo.dimension(dimension_name)
        relation = self._mo.relation(dimension_name)
        return frozenset(
            f for f in candidates
            if relation.characterizes(f, value, dimension, at=at)
        )

    def characterization_map(
        self, dimension_name: str, category_name: str
    ) -> Dict[DimensionValue, FrozenSet[Fact]]:
        """``value → facts characterized`` for one whole category.

        Every member of the category appears (empty frozenset when no
        fact rolls up into it).  Built from the closure table and cached
        per category until the dimension is dirtied.  Treat the returned
        map as read-only.
        """
        entry = self._entry(dimension_name)
        cached = entry.category_maps.get(category_name)
        if cached is not None:
            _CHAR_MAP_HIT.inc()
            return cached
        _CHAR_MAP_MISS.inc()
        dimension = self._mo.dimension(dimension_name)
        category = dimension.category(category_name)
        with trace.span("rollup_index.char_map", dimension=dimension_name,
                        category=category_name):
            result = {
                value: self._fact_set(entry, value)
                for value in category.members()
            }
        entry.category_maps[category_name] = result
        return result

    def facts_for(self, dimension_name: str, category_name: str,
                  value: DimensionValue) -> FrozenSet[Fact]:
        """The facts characterized by ``value`` (empty if none)."""
        return self.characterization_map(
            dimension_name, category_name).get(value, frozenset())

    def nonempty_fact_sets(self, dimension_name: str,
                           category_name: str) -> List[FrozenSet[Fact]]:
        """The category's characterization map filtered down to its
        non-empty fact sets — the inner structure of cuboid sizing,
        memoized per category so a lattice scan filters each category
        once instead of once per candidate cuboid.  Treat as read-only.
        """
        entry = self._entry(dimension_name)
        cached = entry.nonempty_maps.get(category_name)
        if cached is not None:
            return cached
        result = [
            facts for facts in self.characterization_map(
                dimension_name, category_name).values() if facts
        ]
        entry.nonempty_maps[category_name] = result
        return result

    def covers(self, dimension_name: str, stored_category: str,
               target_category: str) -> bool:
        """Whether rolling this dimension up from ``stored_category``
        cells is *byte-identical* to grouping at ``target_category``
        directly — the per-dimension summarizability condition, checked
        extensionally on the instance:

        * every fact visible at either level is characterized by
          *exactly one* stored-category value (no imprecise fact
          recorded above the stored level and so lost, no fact under
          two stored siblings and so double counted); and
        * that stored value's ancestors in the target category are
          exactly the fact's own target-level characterization, at most
          one value (no non-strict edge fanning one stored cell into
          two target cells, no shortcut path bypassing the stored
          level).

        Schema-level Lenz-Shoshani verdicts imply this but are coarser:
        a grouping can fail the verdict because of *another* dimension
        (or another branch of this one) while this particular pair of
        levels combines exactly.  Cached keyed by the dimension's
        version pair plus the fact-set version (the target map at ⊤ is
        the MO's whole fact set).
        """
        if stored_category == target_category:
            return True
        dimension = self._mo.dimension(dimension_name)
        key = (
            dimension_name, stored_category, target_category,
            dimension.order.version,
            self._mo.relation(dimension_name).version,
            self._mo.facts_version,
        )
        cached = self._coverage.get(key)
        if cached is not None:
            _COVERAGE_HIT.inc()
            return cached
        _COVERAGE_MISS.inc()
        stored_map = self.grouping_values_per_fact(dimension_name,
                                                   stored_category)
        target_map = self.grouping_values_per_fact(dimension_name,
                                                   target_category)
        # at ⊤ the target map is exactly F; also require uniqueness for
        # facts only the relation mentions, so a stray can never be
        # combined twice
        candidates: Iterable[Fact] = set(target_map) | set(stored_map)
        at_top = (target_category == dimension.dtype.top_name)
        category = None if at_top else dimension.category(target_category)
        mapped_cache: Dict[DimensionValue, FrozenSet[DimensionValue]] = {}
        result = True
        for fact in candidates:
            stored_values = stored_map.get(fact)
            if stored_values is None or len(stored_values) != 1:
                result = False
                break
            if at_top:
                continue  # every fact maps to the single ⊤ cell
            value = stored_values[0]
            mapped = mapped_cache.get(value)
            if mapped is None:
                mapped = frozenset(
                    ancestor for ancestor in dimension.ancestors(
                        value, reflexive=True)
                    if ancestor in category
                )
                mapped_cache[value] = mapped
            if len(mapped) > 1 or mapped != frozenset(
                    target_map.get(fact, ())):
                result = False
                break
        self._coverage[key] = result
        return result

    def group_counts(self, dimension_name: str,
                     category_name: str) -> Dict[DimensionValue, int]:
        """Distinct-fact counts per category value — the indexed version
        of Example 12's set-count rollup."""
        return {
            value: len(facts)
            for value, facts in self.characterization_map(
                dimension_name, category_name).items()
        }

    def grouping_values_per_fact(
        self,
        dimension_name: str,
        category_name: str,
        at: Optional[Chronon] = None,
    ) -> Dict[Fact, List[DimensionValue]]:
        """For each fact, the id-sorted grouping-category values
        characterizing it — the inner loop of aggregate formation,
        answered by inverting the closure table once per category.

        Grouping at ⊤ is the trivial grouping: every fact of the MO is
        characterized by ⊤ (the paper's "cannot characterize within this
        dimension" marker), mirroring
        :func:`repro.algebra.aggregate._grouping_values_per_fact`.
        Treat the returned map as read-only.
        """
        dimension = self._mo.dimension(dimension_name)
        if category_name == dimension.dtype.top_name:
            top = dimension.top_value
            return {fact: [top] for fact in self._mo.facts}
        if at is not None:
            return self._grouping_values_at(dimension_name, category_name, at)
        entry = self._entry(dimension_name)
        cached = entry.per_fact_maps.get(category_name)
        if cached is not None:
            _PER_FACT_HIT.inc()
            return cached
        facts_table = self._facts
        values_table = entry.values
        result: Dict[Fact, List[DimensionValue]] = {
            facts_table.object_of(fid): [
                values_table.object_of(vid) for vid in vids
            ]
            for fid, vids in self._grouping_ids(
                dimension_name, entry, category_name).items()
        }
        entry.per_fact_maps[category_name] = result
        return result

    def _grouping_ids(self, dimension_name: str, entry: _DimensionIndex,
                      category_name: str) -> Dict[int, Tuple[int, ...]]:
        cached = entry.per_fact_id_maps.get(category_name)
        if cached is not None:
            _PER_FACT_HIT.inc()
            return cached
        _PER_FACT_MISS.inc()
        dimension = self._mo.dimension(dimension_name)
        by_fact_ids: Dict[int, List[int]] = {}
        for value in dimension.category(category_name).members():
            vid = entry.values.id_of(value)
            if vid is None:
                continue
            for fid in entry.closure.get(vid, ()):
                by_fact_ids.setdefault(fid, []).append(vid)
        result = {
            fid: tuple(sorted(vids)) for fid, vids in by_fact_ids.items()
        }
        entry.per_fact_id_maps[category_name] = result
        return result

    # -- the all-integer view (the aggregate hot loop) ---------------------

    def fact_id(self, fact: Fact) -> int:
        """The dense interned id of a fact (assigning one if unseen)."""
        return self._facts.intern(fact)

    def mo_fact_ids(self) -> FrozenSet[int]:
        """The interned ids of the MO's own fact set ``F``, cached
        against the MO's fact-set version.  Grouping must only emit
        facts of ``F`` even when a relation (transiently) mentions
        others, and this set makes that a per-id integer check."""
        version = self._mo.facts_version
        if self._mo_fact_ids is None or self._mo_facts_version != version:
            intern = self._facts.intern
            ops = (None if self._mo_fact_ids is None else
                   self._mo.fact_log.since(self._mo_facts_version, version))
            if ops is not None:
                # the fact set only grows: patch the interned view with
                # the logged insertions instead of re-interning F
                self._mo_fact_ids = self._mo_fact_ids | frozenset(
                    intern(fact) for _, fact in ops)
            else:
                self._mo_fact_ids = frozenset(
                    intern(f) for f in self._mo.facts)
            self._mo_facts_version = version
        return self._mo_fact_ids

    def facts_of_ids(self, ids: Iterable[int]) -> Set[Fact]:
        """The facts behind a collection of interned fact ids."""
        return self._facts.objects_of(ids)

    def value_of(self, dimension_name: str, value_id: int) -> DimensionValue:
        """The value behind an interned value id of one dimension."""
        return self._value_tables[dimension_name].object_of(value_id)

    def grouping_value_ids_per_fact(
        self, dimension_name: str, category_name: str
    ) -> Dict[int, Tuple[int, ...]]:
        """The id-level form of :meth:`grouping_values_per_fact`
        (untimed, non-⊤): interned fact id → id-sorted tuple of interned
        grouping-value ids.  Aggregate formation runs its per-fact
        combination loop entirely on these integers — hashing ints
        instead of value/fact objects — and converts each distinct
        combination back to objects once.  Treat as read-only.
        """
        entry = self._entry(dimension_name)
        return self._grouping_ids(dimension_name, entry, category_name)

    def grouping_value_id_array(
        self, dimension_name: str, category_name: str
    ) -> Tuple[array, Dict[int, Tuple[int, ...]]]:
        """The dense-array form of :meth:`grouping_value_ids_per_fact`
        (untimed, non-⊤): an ``array('q')`` indexed by interned fact id
        holding the fact's single grouping-value id, plus a side map for
        the imprecise facts.  Cells are :data:`UNCHARACTERIZED` for
        facts with no value in the category and :data:`MULTI_VALUED`
        for facts whose id-sorted value tuple lives in the side map.

        Fact ids at or beyond ``len(array)`` were interned after the
        array was built and are necessarily uncharacterized here (a new
        characterization in this dimension would have bumped the
        relation version and evicted the cache).  Kernel setup reads
        this with zero per-object hashing.  Treat both parts as
        read-only.
        """
        entry = self._entry(dimension_name)
        cached = entry.id_array_maps.get(category_name)
        if cached is not None:
            return cached
        id_map = self._grouping_ids(dimension_name, entry, category_name)
        column = array("q", [UNCHARACTERIZED]) * len(self._facts)
        multi: Dict[int, Tuple[int, ...]] = {}
        for fid, vids in id_map.items():
            if len(vids) == 1:
                column[fid] = vids[0]
            else:
                column[fid] = MULTI_VALUED
                multi[fid] = vids
        cached = (column, multi)
        entry.id_array_maps[category_name] = cached
        return cached

    def columnar(self):
        """The MO's shared :class:`~repro.engine.columnar.ColumnarStore`
        — version-stamped flat group-key columns and measure columns for
        the batch aggregation kernels — created lazily on first use."""
        if self._columnar is None:
            from repro.engine.columnar import ColumnarStore
            self._columnar = ColumnarStore(self)
        return self._columnar

    def _grouping_values_at(
        self, dimension_name: str, category_name: str, at: Chronon
    ) -> Dict[Fact, List[DimensionValue]]:
        """The temporal variant: closure candidates, naive time filter."""
        dimension = self._mo.dimension(dimension_name)
        table = self._value_tables.setdefault(dimension_name, InternTable())
        out: Dict[Fact, Set[DimensionValue]] = {}
        for value in dimension.category(category_name).members(at=at):
            for fact in self.facts_characterized_by(
                    dimension_name, value, at=at):
                out.setdefault(fact, set()).add(value)
        return {
            fact: sorted(values, key=table.intern)
            for fact, values in out.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RollupIndex({self._mo!r}, {len(self._dims)} dimensions "
                f"indexed, {self._builds} builds)")
