"""Efficient-implementation layer (paper §5 future work): rollup
indexes, summarizability-gated pre-aggregation, cube materialization
with greedy view selection, and a fluent OLAP query API."""

from repro.engine.cube import CubeBuilder, Cuboid, greedy_view_selection
from repro.engine.imprecision import (
    GranularityClassification,
    ImpreciseGroups,
    classify_by_granularity,
    group_with_imprecision,
    weighted_distribution,
)
from repro.engine.optimizer import (
    Base,
    Plan,
    ProjectNode,
    SelectNode,
    evaluate,
    explain,
    optimize,
)
from repro.engine.preagg import MaterializedAggregate, PreAggregateStore
from repro.engine.recommend import (
    MaterializationRecommendation,
    apply_recommendations,
    recommend_materializations,
)
from repro.engine.timeseries import change_points, group_count_series, series_table
from repro.engine.query import Query
from repro.engine.rollup_index import RollupIndex

__all__ = [
    "CubeBuilder",
    "Cuboid",
    "greedy_view_selection",
    "GranularityClassification",
    "ImpreciseGroups",
    "classify_by_granularity",
    "group_with_imprecision",
    "weighted_distribution",
    "Base",
    "Plan",
    "ProjectNode",
    "SelectNode",
    "evaluate",
    "explain",
    "optimize",
    "change_points",
    "group_count_series",
    "series_table",
    "MaterializedAggregate",
    "PreAggregateStore",
    "MaterializationRecommendation",
    "apply_recommendations",
    "recommend_materializations",
    "Query",
    "RollupIndex",
]
