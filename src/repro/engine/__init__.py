"""Efficient-implementation layer (paper §5 future work): rollup
indexes, summarizability-gated pre-aggregation, cube materialization
with greedy view selection, and a fluent OLAP query API."""

from repro.engine.columnar import (
    ColumnarGrouping,
    ColumnarStore,
    MeasureColumn,
    MeasureRows,
)
from repro.engine.cube import CubeBuilder, Cuboid, greedy_view_selection
from repro.engine.imprecision import (
    GranularityClassification,
    ImpreciseGroups,
    UNATTRIBUTED,
    classify_by_granularity,
    group_with_imprecision,
    weighted_distribution,
)
from repro.engine.optimizer import (
    AnalyzedNode,
    AnalyzedPlan,
    Base,
    Plan,
    ProjectNode,
    SelectNode,
    evaluate,
    explain,
    explain_analyze,
    optimize,
)
from repro.engine.plan_fingerprint import (
    PlanFingerprint,
    Unfingerprintable,
    fingerprint,
    mo_token,
)
from repro.engine.preagg import MaterializedAggregate, PreAggregateStore
from repro.engine.result_cache import (
    DEFAULT_CACHE,
    ResultCache,
    version_vector,
)
from repro.engine.recommend import (
    MaterializationRecommendation,
    apply_recommendations,
    recommend_materializations,
)
from repro.engine.timeseries import (change_points,
                                     group_count_series,
                                     series_table)
from repro.engine.backends import (
    BackendRefused,
    ExecutionBackend,
    MemoryBackend,
    SqlExecutionBackend,
    backend_named,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.engine.query import ExplainStep, Query, QueryExplain
from repro.engine.rollup_index import RollupIndex

# NOTE: repro.engine.sharded (ShardedBackend) is deliberately not
# imported here — it pulls in the analyzer package, which imports this
# package back through the SQL pushdown; the registry loads it lazily
# on first ``backend="sharded"`` use.

__all__ = [
    "ColumnarGrouping",
    "ColumnarStore",
    "MeasureColumn",
    "MeasureRows",
    "CubeBuilder",
    "Cuboid",
    "greedy_view_selection",
    "GranularityClassification",
    "ImpreciseGroups",
    "UNATTRIBUTED",
    "classify_by_granularity",
    "group_with_imprecision",
    "weighted_distribution",
    "AnalyzedNode",
    "AnalyzedPlan",
    "Base",
    "Plan",
    "ProjectNode",
    "SelectNode",
    "evaluate",
    "explain",
    "explain_analyze",
    "optimize",
    "change_points",
    "group_count_series",
    "series_table",
    "MaterializedAggregate",
    "PreAggregateStore",
    "PlanFingerprint",
    "Unfingerprintable",
    "fingerprint",
    "mo_token",
    "DEFAULT_CACHE",
    "ResultCache",
    "version_vector",
    "MaterializationRecommendation",
    "apply_recommendations",
    "recommend_materializations",
    "BackendRefused",
    "ExecutionBackend",
    "MemoryBackend",
    "SqlExecutionBackend",
    "backend_named",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "ExplainStep",
    "Query",
    "QueryExplain",
    "RollupIndex",
]
