"""The versioned query-result cache (ROADMAP: the serving layer's
substrate).

Entries are keyed by a :class:`~repro.engine.plan_fingerprint.PlanFingerprint`
digest and guarded by a **version vector** — the mutation counters the
delta-maintenance work already tracks: the MO's fact-set version plus,
per dimension, the :class:`FactDimensionRelation` version and the
:class:`AnnotatedOrder` version.  Invalidation is therefore exact and
free: any mutation bumps a counter, the vector no longer matches, and
the lookup misses (the stale entry is evicted lazily, counted as
``query.cache.stale_evicted``).  No subscription, no flush protocol —
the same trick ``SqlBackend`` uses to reload its star.

Rows are stored *encoded*: grouping values intern into one cache-wide
:class:`~repro.core.interning.InternTable` (so a value appearing in a
thousand entries is stored once) and decode back through the bulk
:meth:`~repro.core.interning.InternTable.values_of`.  A hit never
returns the stored objects' mutable containers — each hit copies the
decoded row template, so a caller mutating its result cannot poison
later hits.

Admission is cost-aware: a result cheaper to recompute than to decode
is not worth an entry, so :meth:`ResultCache.put` refuses (counted as
``query.cache.admit_refused``) when the measured compute time is below
``admit_factor`` times the estimated hit cost.  Byte-size accounting
(``sys.getsizeof`` over the encoded rows) bounds the cache by
``max_bytes`` as well as ``max_entries``, evicting least-recently-used
entries (``query.cache.evicted``).

All operations take the cache's re-entrant lock — the cache is shared
state for the upcoming concurrent serving layer; the metric objects it
reports through are themselves thread-safe (:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.interning import InternTable
from repro.core.mo import MultidimensionalObject
from repro.obs import metrics

__all__ = ["CacheEntry", "ResultCache", "DEFAULT_CACHE", "version_vector"]

_HIT = metrics.counter("query.cache.hit")
_MISS = metrics.counter("query.cache.miss")
_EVICTED = metrics.counter("query.cache.evicted")
_STALE_EVICTED = metrics.counter("query.cache.stale_evicted")
_ADMIT_REFUSED = metrics.counter("query.cache.admit_refused")
_BYTES = metrics.gauge("query.cache.bytes")
_ENTRIES = metrics.gauge("query.cache.entries")
_LOOKUP_SECONDS = metrics.histogram("query.cache.lookup_seconds")


def version_vector(mo: MultidimensionalObject) -> Tuple[object, ...]:
    """The MO's mutation-counter vector: the fact-set version plus, per
    dimension, the fact-dimension relation version and the containment
    order version — exactly the counters delta maintenance bumps, so
    equality of vectors is equality of observable state for any query
    over ``mo``."""
    return (mo.facts_version, tuple(
        (name, mo.relation(name).version,
         mo.dimension(name).order.version)
        for name in mo.dimension_names))


#: estimated fixed cost of serving one hit (lock, lookup, list build)
_HIT_BASE_SECONDS = 3e-6
#: estimated per-cell cost of copying a decoded row template
_HIT_CELL_SECONDS = 0.15e-6


class CacheEntry:
    """One cached result: the guarding version vector, the encoded
    rows, and the lazily-decoded row template hits copy from."""

    __slots__ = ("versions", "names", "encoded", "nbytes", "template")

    def __init__(self, versions: Tuple[object, ...],
                 names: Tuple[str, ...],
                 encoded: List[Tuple[Tuple[int, ...], object]],
                 nbytes: int) -> None:
        self.versions = versions
        self.names = names
        self.encoded = encoded
        self.nbytes = nbytes
        self.template: Optional[List[Tuple[Dict, object]]] = None


class ResultCache:
    """An LRU of query results keyed by ``(fingerprint digest, version
    vector)`` — see the module docstring for the invalidation and
    admission story."""

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 64 * 1024 * 1024,
                 admit_factor: float = 2.0) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._lock = threading.RLock()
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._admit_factor = admit_factor
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._values = InternTable()
        self._nbytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Current accounted size of the encoded entries."""
        return self._nbytes

    def get(self, digest: str, versions: Tuple[object, ...]
            ) -> Optional[List[Tuple[Dict, object]]]:
        """The cached rows for ``digest`` at ``versions``, or ``None``.

        A version mismatch evicts the stale entry and misses; a hit
        refreshes recency and returns fresh row dicts (the template is
        copied, never shared)."""
        t0 = time.perf_counter()
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                _MISS.inc()
                _LOOKUP_SECONDS.observe(time.perf_counter() - t0)
                return None
            if entry.versions != versions:
                self._drop_locked(digest, entry)
                _STALE_EVICTED.inc()
                _MISS.inc()
                _LOOKUP_SECONDS.observe(time.perf_counter() - t0)
                return None
            self._entries.move_to_end(digest)
            template = entry.template
            if template is None:
                values_of = self._values.values_of
                names = entry.names
                template = entry.template = [
                    (dict(zip(names, values_of(ids))), raw)
                    for ids, raw in entry.encoded
                ]
            rows = [(group.copy(), raw) for group, raw in template]
            _HIT.inc()
            _LOOKUP_SECONDS.observe(time.perf_counter() - t0)
            return rows

    def put(self, digest: str, versions: Tuple[object, ...],
            names: Tuple[str, ...],
            rows: List[Tuple[Dict, object]],
            compute_seconds: float) -> bool:
        """Admit ``rows`` (computed in ``compute_seconds``) under
        ``digest``/``versions``; returns whether the entry was stored.

        Results cheaper to recompute than to serve from cache are
        refused: the estimated hit cost scales with the number of row
        cells to copy."""
        estimated_hit = _HIT_BASE_SECONDS + \
            _HIT_CELL_SECONDS * len(rows) * (len(names) + 1)
        if compute_seconds < self._admit_factor * estimated_hit:
            _ADMIT_REFUSED.inc()
            return False
        with self._lock:
            intern = self._values.intern
            encoded = [
                (tuple(intern(group[name]) for name in names), raw)
                for group, raw in rows
            ]
            nbytes = 128  # entry and key overhead estimate
            for ids, raw in encoded:
                nbytes += sys.getsizeof(ids) + sys.getsizeof(raw)
            old = self._entries.pop(digest, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[digest] = CacheEntry(
                versions=versions, names=names, encoded=encoded,
                nbytes=nbytes)
            self._nbytes += nbytes
            while len(self._entries) > self._max_entries or \
                    (self._nbytes > self._max_bytes
                     and len(self._entries) > 1):
                victim_digest, victim = next(iter(self._entries.items()))
                self._drop_locked(victim_digest, victim)
                _EVICTED.inc()
            self._publish_gauges_locked()
            return True

    def _drop_locked(self, digest: str, entry: CacheEntry) -> None:
        del self._entries[digest]
        self._nbytes -= entry.nbytes
        self._publish_gauges_locked()

    def _publish_gauges_locked(self) -> None:
        _BYTES.set(self._nbytes)
        _ENTRIES.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (the intern table is kept — ids are
        append-only and stay valid)."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
            self._publish_gauges_locked()


#: The process-global cache ``Query.execute`` answers from by default.
DEFAULT_CACHE = ResultCache()
