"""Text renderings of the paper's tables and figures."""

from repro.report.figures import (
    render_dimension_type,
    render_figure1,
    render_figure2,
    render_figure3,
)
from repro.report.dot import dimension_dot, dimension_type_dot, schema_dot
from repro.report.pivot import pivot, render_pivot
from repro.report.tables import render_table, render_table1, table1_tuples

__all__ = [
    "render_dimension_type",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "dimension_dot",
    "dimension_type_dot",
    "schema_dot",
    "pivot",
    "render_pivot",
    "render_table",
    "render_table1",
    "table1_tuples",
]
