"""Plain-text table rendering, plus the regeneration of Table 1.

:func:`render_table` is a small fixed-width renderer used by every
benchmark's output; :func:`render_table1` reproduces the paper's
Table 1 (all four relational tables of the case study) from the
structured rows in :mod:`repro.casestudy.tables`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.casestudy import tables

__all__ = ["render_table", "render_table1", "table1_tuples"]


def render_table(header: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table with a header rule."""
    body = [[str(cell) for cell in row] for row in rows]
    columns = len(header)
    widths = [len(h) for h in header]
    for row in body:
        for i in range(min(columns, len(row))):
            widths[i] = max(widths[i], len(row[i]))

    def fmt(row: Sequence[str]) -> str:
        cells = [row[i].ljust(widths[i]) if i < len(row) else " " * widths[i]
                 for i in range(columns)]
        return "  ".join(cells).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(header)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


def table1_tuples() -> dict:
    """Table 1 as plain tuples per table — the canonical structured form
    the Table 1 benchmark asserts against."""
    return {
        "Patient": [
            (r.id, r.name, r.ssn, r.date_of_birth)
            for r in tables.PATIENT_ROWS
        ],
        "Has": [
            (r.patient_id, r.diagnosis_id, r.valid_from, r.valid_to, r.type)
            for r in tables.HAS_ROWS
        ],
        "Diagnosis": [
            (r.id, r.code, r.text, r.valid_from, r.valid_to)
            for r in tables.DIAGNOSIS_ROWS
        ],
        "Grouping": [
            (r.parent_id, r.child_id, r.valid_from, r.valid_to, r.type)
            for r in tables.GROUPING_ROWS
        ],
    }


def render_table1() -> str:
    """Render all four tables of the paper's Table 1."""
    data = table1_tuples()
    sections = [
        render_table(["ID", "Name", "SSN", "Date of Birth"],
                     data["Patient"], title="Patient Table"),
        render_table(
            ["PatientID", "DiagnosisID", "ValidFrom", "ValidTo", "Type"],
            data["Has"], title="Has Table"),
        render_table(["ID", "Code", "Text", "ValidFrom", "ValidTo"],
                     data["Diagnosis"], title="Diagnosis Table"),
        render_table(["ParentID", "ChildID", "ValidFrom", "ValidTo", "Type"],
                     data["Grouping"], title="Grouping Table"),
    ]
    return "\n\n".join(sections)
