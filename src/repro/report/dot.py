"""Graphviz (DOT) export of schema and dimension lattices.

The paper's future work asks whether "the lattice structures of the
schema can be used directly in the user interface of an OLAP tool";
this module produces the machine-readable half: DOT digraphs for a
dimension type's category lattice, for a dimension's value containment
graph, and for a whole schema, renderable with any graphviz toolchain.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject

__all__ = ["dimension_type_dot", "dimension_dot", "schema_dot"]


def _quote(text: object) -> str:
    return '"' + str(text).replace('"', r'\"') + '"'


def dimension_type_dot(dtype: DimensionType) -> str:
    """The category-type lattice as a DOT digraph (edges point upward,
    labels show aggregation types)."""
    lines: List[str] = [f"digraph {_quote(dtype.name)} {{",
                        "  rankdir=BT;"]
    for ctype in dtype.category_types():
        shape = "doublecircle" if ctype.is_top else (
            "box" if ctype.name == dtype.bottom_name else "ellipse")
        label = f"{ctype.name}\\n({ctype.aggtype.symbol})"
        lines.append(f"  {_quote(ctype.name)} "
                     f"[label={_quote(label)}, shape={shape}];")
    for ctype in dtype.category_types():
        for parent in sorted(dtype.pred(ctype.name)):
            lines.append(f"  {_quote(ctype.name)} -> {_quote(parent)};")
    lines.append("}")
    return "\n".join(lines)


def dimension_dot(dimension: Dimension,
                  max_values: Optional[int] = 50) -> str:
    """The value containment graph as a DOT digraph.

    Values are clustered by category; edge labels carry non-trivial
    annotations (time ranges, probabilities).  ``max_values`` bounds the
    output for large dimensions (None = no bound).
    """
    lines: List[str] = [f"digraph {_quote(dimension.name)} {{",
                        "  rankdir=BT;"]
    values = sorted(dimension.values(), key=repr)
    if max_values is not None:
        values = values[:max_values]
    kept = set(values)
    for index, category in enumerate(dimension.categories()):
        members = [v for v in values if category.contains(v)]
        if not members:
            continue
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(category.name)};")
        for value in members:
            label = value.label or str(value.sid)
            lines.append(f"    {_quote(repr(value.sid))} "
                         f"[label={_quote(label)}];")
        lines.append("  }")
    for child, parent, time, prob in dimension.order.edges():
        if child not in kept or parent not in kept:
            continue
        annotations = []
        if not time.is_always():
            annotations.append(repr(time))
        if prob < 1.0:
            annotations.append(f"p={prob:g}")
        attr = (f" [label={_quote(', '.join(annotations))}]"
                if annotations else "")
        lines.append(f"  {_quote(repr(child.sid))} -> "
                     f"{_quote(repr(parent.sid))}{attr};")
    lines.append("}")
    return "\n".join(lines)


def schema_dot(mo: MultidimensionalObject) -> str:
    """The whole schema (Figure 2's content) as one DOT digraph with a
    cluster per dimension and the fact type in the middle."""
    lines: List[str] = [f"digraph {_quote(mo.schema.fact_type)} {{",
                        "  rankdir=BT;",
                        f"  {_quote(mo.schema.fact_type)} [shape=box3d];"]
    for index, name in enumerate(mo.dimension_names):
        dtype = mo.dimension(name).dtype
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(name)};")
        for ctype in dtype.category_types():
            node = f"{name}.{ctype.name}"
            label = f"{ctype.name}\\n({ctype.aggtype.symbol})"
            lines.append(f"    {_quote(node)} [label={_quote(label)}];")
        for ctype in dtype.category_types():
            for parent in sorted(dtype.pred(ctype.name)):
                lines.append(f"    {_quote(f'{name}.{ctype.name}')} -> "
                             f"{_quote(f'{name}.{parent}')};")
        lines.append("  }")
        bottom = f"{name}.{dtype.bottom_name}"
        lines.append(f"  {_quote(mo.schema.fact_type)} -> "
                     f"{_quote(bottom)} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)
