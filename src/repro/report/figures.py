"""ASCII renderings of the paper's figures.

* Figure 1 — the ER diagram of the case study — is rendered as a
  structured inventory of entities, attributes, and relationships;
* Figure 2 — the schema of the "Patient" MO — renders each dimension's
  category-type lattice bottom-up;
* Figure 3 — the result MO of aggregate formation (Example 12) —
  renders the groups, the retained diagnosis categories, and the result
  dimension with its ranges.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject

__all__ = [
    "render_figure1",
    "render_dimension_type",
    "render_figure2",
    "render_figure3",
]

#: Figure 1's content as structured data: the entities (with attributes)
#: and relationships of the case study's ER diagram.
ER_ENTITIES: Dict[str, List[str]] = {
    "Patient": ["Name", "SSN", "Date of Birth", "(Age)"],
    "Diagnosis (supertype)": ["Code", "Text", "Valid From", "Valid To"],
    "Low-level Diagnosis": [],
    "Diagnosis Family": [],
    "Diagnosis Group": [],
    "Area": ["Name"],
    "County": ["Name"],
    "Region": ["Name"],
}

ER_RELATIONSHIPS: List[str] = [
    "Has(Patient (0,n) — Diagnosis (1,n); Valid From, Valid To, Type)",
    "Is part of(Low-level Diagnosis (1,n) — Diagnosis Family (1,n); "
    "Valid From, Valid To, Type)",
    "Grouping(Diagnosis Family (1,n) — Diagnosis Group (1,n); "
    "Valid From, Valid To, Type)",
    "Lives in(Patient (0,n) — Area (1,1); Valid From, Valid To)",
    "County grouping(Area (1,1) — County (1,n))",
    "Area grouping(County (1,1) — Region (1,n))",
    "D(Diagnosis supertype of Low-level Diagnosis, Diagnosis Family, "
    "Diagnosis Group)",
]


def render_figure1() -> str:
    """Figure 1 as an entity/relationship inventory."""
    lines = ["Figure 1. Patient Diagnosis Case Study (ER inventory)", ""]
    lines.append("Entities:")
    for entity, attributes in ER_ENTITIES.items():
        attr = (": " + ", ".join(attributes)) if attributes else ""
        lines.append(f"  {entity}{attr}")
    lines.append("")
    lines.append("Relationships:")
    for rel in ER_RELATIONSHIPS:
        lines.append(f"  {rel}")
    return "\n".join(lines)


def render_dimension_type(dtype: DimensionType) -> str:
    """One dimension's category lattice, bottom-up, with aggregation
    types and the Pred relation as arrows."""
    lines = [f"{dtype.name}:"]
    for ctype in dtype.category_types():
        marks = []
        if ctype.is_bottom or ctype.name == dtype.bottom_name:
            marks.append("⊥")
        if ctype.is_top:
            marks.append("⊤")
        mark = f" [{' '.join(marks)}]" if marks else ""
        parents = sorted(dtype.pred(ctype.name))
        arrow = f" -> {', '.join(parents)}" if parents else ""
        lines.append(
            f"  {ctype.name} ({ctype.aggtype.symbol}){mark}{arrow}"
        )
    return "\n".join(lines)


def render_figure2(mo: MultidimensionalObject) -> str:
    """Figure 2: the schema of an MO as per-dimension lattices."""
    lines = [f"Figure 2. Schema of the {mo.schema.fact_type!r} MO", ""]
    for name in mo.dimension_names:
        lines.append(render_dimension_type(mo.dimension(name).dtype))
        lines.append("")
    return "\n".join(lines).rstrip()


def render_figure3(aggregated: MultidimensionalObject,
                   group_dimension: str, result_dimension: str) -> str:
    """Figure 3: the result MO of an aggregate formation, showing the
    fact-dimension relations of the non-trivial dimensions."""
    lines = [
        "Figure 3. Result MO for Aggregate Formation",
        "",
        f"Fact type: {aggregated.schema.fact_type}",
        "",
    ]
    for name in (group_dimension, result_dimension):
        dimension = aggregated.dimension(name)
        lines.append(render_dimension_type(dimension.dtype))
        lines.append("  values:")
        for category in dimension.categories():
            members = sorted(
                (v.label or str(v.sid)) for v in category.members()
            )
            lines.append(f"    {category.name}: {{{', '.join(members)}}}")
        lines.append("")
    for name in (group_dimension, result_dimension):
        lines.append(f"R[{name}]:")
        for fact, value in sorted(aggregated.relation(name).pairs(),
                                  key=repr):
            members = "{" + ",".join(
                sorted(str(m.fid) for m in fact.members)) + "}"
            lines.append(f"  ({members}, {value.label or value.sid})")
        lines.append("")
    return "\n".join(lines).rstrip()
