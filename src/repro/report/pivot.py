"""Two-dimensional pivot (cross-tab) rendering.

Gray et al.'s cross-tab — one of the operators the paper's model
generalizes — remains the most readable presentation of a two-way
aggregate.  :func:`pivot` turns the rows of
:func:`repro.algebra.sql_aggregation` into a cross-tab and
:func:`render_pivot` prints it with row/column totals where the
aggregate is safely additive (the caller says so — the renderer cannot
see the summarizability verdict and refuses to guess).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro._errors import AlgebraError
from repro.report.tables import render_table

__all__ = ["pivot", "render_pivot"]


def pivot(
    rows: Sequence[Dict[str, object]],
    row_key: str,
    column_key: str,
    measure: str,
) -> Tuple[List[Hashable], List[Hashable], Dict[Tuple, object]]:
    """Reshape GROUP-BY rows into (row labels, column labels, cells).

    ``rows`` is the output of :func:`repro.algebra.sql_aggregation`;
    ``row_key``/``column_key`` name the grouped dimensions and
    ``measure`` the aggregate column.  Missing combinations are absent
    from the cell map (rendered blank).
    """
    row_labels: List[Hashable] = []
    column_labels: List[Hashable] = []
    cells: Dict[Tuple, object] = {}
    for row in rows:
        if row_key not in row or column_key not in row:
            raise AlgebraError(
                f"rows lack keys {row_key!r}/{column_key!r}: {row!r}"
            )
        r, c = row[row_key], row[column_key]
        if r not in row_labels:
            row_labels.append(r)
        if c not in column_labels:
            column_labels.append(c)
        cells[(r, c)] = row[measure]
    row_labels.sort(key=repr)
    column_labels.sort(key=repr)
    return row_labels, column_labels, cells


def render_pivot(
    rows: Sequence[Dict[str, object]],
    row_key: str,
    column_key: str,
    measure: str,
    title: str = "",
    totals: bool = False,
) -> str:
    """Render a cross-tab.

    ``totals`` adds row/column sums — only ask for them when the
    measure is additive *and* the grouping is summarizable; with the
    model's many-to-many relationships a fact can appear in several
    cells, so totals of counts generally over-state (which is exactly
    what the paper's aggregation types guard against).
    """
    row_labels, column_labels, cells = pivot(rows, row_key, column_key,
                                             measure)
    header = [f"{row_key} \\ {column_key}"] + [str(c)
                                               for c in column_labels]
    if totals:
        header.append("Σ")
    body: List[List[object]] = []
    column_sums: Dict[Hashable, float] = {c: 0.0 for c in column_labels}
    for r in row_labels:
        line: List[object] = [r]
        row_sum = 0.0
        for c in column_labels:
            value = cells.get((r, c))
            line.append("" if value is None else value)
            if isinstance(value, (int, float)):
                row_sum += value
                column_sums[c] += value
        if totals:
            line.append(f"{row_sum:g}")
        body.append(line)
    if totals:
        footer: List[object] = ["Σ"]
        footer.extend(f"{column_sums[c]:g}" for c in column_labels)
        footer.append(f"{sum(column_sums.values()):g}")
        body.append(footer)
    return render_table(header, body, title=title)
