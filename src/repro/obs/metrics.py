"""Process-local metrics: counters, gauges, histograms, one registry.

The engine's hot layers report what they did — closure rebuilds,
characterization-map hits, pre-aggregate reuse and refusal, which α path
answered a query — through the metrics in this module, so the question
"why did this number move?" has an answer recorded next to the number
(see ``docs/OBSERVABILITY.md`` for the metric catalogue).

Zero dependencies, zero configuration:

* metric objects are created on first use through the registry
  (``counter(name)`` / ``gauge(name)`` / ``histogram(name)``) and are
  plain attribute-update objects — an increment is one ``float`` add;
* :func:`reset` zeroes every registered metric **in place**, so modules
  may cache metric objects at import time and survive resets;
* :func:`snapshot` returns plain dicts (JSON-ready), :func:`render`
  a human-readable text block.

Instrumentation is deliberately placed at *operation* granularity
(one query, one map build, one materialization) — never inside per-fact
loops — so the counters stay on permanently without moving benchmark
numbers; only :mod:`repro.obs.trace` spans have an on/off switch.

Mutation and snapshot are **thread-safe**: every ``inc``/``set``/
``observe``/``reset`` and every :func:`snapshot` takes one shared
module lock, so concurrent reporters (the result cache is shared
state; the serving layer will be multi-threaded) never lose updates
and a snapshot never sees a histogram mid-update.  One uncontended
lock acquisition is ~100ns — noise at operation granularity.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
    "render",
]


#: One lock for every metric mutation and snapshot in the process —
#: mutations are rare (operation granularity) and tiny, so a single
#: uncontended lock beats per-metric locks in both memory and code.
_MUTATION_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing count (until :meth:`reset`)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (defaults to 1; fractional amounts allowed,
        e.g. unattributed imprecise mass)."""
        with _MUTATION_LOCK:
            self.value += amount

    def reset(self) -> None:
        """Zero the counter, keeping it registered."""
        with _MUTATION_LOCK:
            self.value = 0.0


class Gauge:
    """A value that goes up and down (e.g. entries currently stored)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        with _MUTATION_LOCK:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the level up (or down, with a negative amount)."""
        with _MUTATION_LOCK:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the level down."""
        with _MUTATION_LOCK:
            self.value -= amount

    def reset(self) -> None:
        """Zero the gauge, keeping it registered."""
        with _MUTATION_LOCK:
            self.value = 0.0


class Histogram:
    """Summary statistics of observed values (count/sum/min/max/mean).

    Bounded state — no sample reservoir — so observing is O(1) and a
    snapshot is always cheap; good enough to read "how many groups did
    α form, typically" next to a throughput number.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with _MUTATION_LOCK:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Forget every observation, keeping the histogram registered."""
        with _MUTATION_LOCK:
            self._reset_locked()

    def _reset_locked(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def summary(self) -> Dict[str, float]:
        """The JSON-ready summary of this histogram (one consistent
        view — never a count from one observation and a total from the
        next)."""
        with _MUTATION_LOCK:
            count, total = self.count, self.total
            low, high = self.min, self.max
        return {
            "count": count,
            "total": total,
            "min": low if count else 0.0,
            "max": high if count else 0.0,
            "mean": round(total / count, 6) if count else 0.0,
        }


class MetricsRegistry:
    """All metrics of one process, by name.

    Creation is get-or-create and thread-safe; a name is permanently one
    kind of metric (asking for a ``counter`` under a ``gauge``'s name
    raises).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, table: Dict, name: str, factory):
        found = table.get(name)
        if found is not None:
            return found
        with self._lock:
            found = table.get(name)
            if found is None:
                self._check_unique(name, table)
                found = table.setdefault(name, factory(name))
            return found

    def _check_unique(self, name: str, table: Dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    f"different kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(self._histograms, name, Histogram)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Dict]:
        """Plain-dict view of every metric (optionally only names under
        ``prefix``), ready for ``json.dumps``."""

        def keep(name: str) -> bool:
            return prefix is None or name.startswith(prefix)

        return {
            "counters": {
                name: c.value
                for name, c in sorted(self._counters.items()) if keep(name)
            },
            "gauges": {
                name: g.value
                for name, g in sorted(self._gauges.items()) if keep(name)
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items()) if keep(name)
            },
        }

    def reset(self) -> None:
        """Zero every metric **in place** — cached metric objects stay
        valid, which is what lets hot modules hold direct references."""
        with self._lock:
            for table in (self._counters, self._gauges, self._histograms):
                for metric in table.values():
                    metric.reset()

    def render(self, prefix: Optional[str] = None) -> str:
        """A sorted ``name value`` text block (one metric per line)."""
        snap = self.snapshot(prefix)
        lines = []
        for name, value in snap["counters"].items():
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{name} {shown}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name} {value}")
        for name, summary in snap["histograms"].items():
            lines.append(
                f"{name} count={summary['count']} mean={summary['mean']} "
                f"min={summary['min']} max={summary['max']}"
            )
        return "\n".join(lines)


#: The process-global registry every engine module reports into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """``REGISTRY.counter(name)`` (the usual way to obtain a counter)."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """``REGISTRY.gauge(name)``."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """``REGISTRY.histogram(name)``."""
    return REGISTRY.histogram(name)


def snapshot(prefix: Optional[str] = None) -> Dict[str, Dict]:
    """``REGISTRY.snapshot(prefix)``."""
    return REGISTRY.snapshot(prefix)


def reset() -> None:
    """``REGISTRY.reset()``."""
    REGISTRY.reset()


def render(prefix: Optional[str] = None) -> str:
    """``REGISTRY.render(prefix)``."""
    return REGISTRY.render(prefix)
