"""Nestable trace spans with a bounded ring buffer.

``with span("aggregate.alpha", grouping=...):`` brackets one unit of
engine work; on exit, a :class:`SpanRecord` (name, attributes, wall
time, nesting depth, parent) lands in a process-local ring buffer that
:func:`spans` reads back — the raw material for ``explain``-style
output and for understanding *where* a slow query spent its time.

Tracing is **off by default** and the disabled path is a single module
flag check returning a shared no-op context manager — cheap enough to
leave `span(...)` calls permanently in hot layers (the benchmark gate
in ``BENCH_aggregate.json`` runs with tracing disabled and must stay
within 5% of the uninstrumented baseline).

Span names follow ``<layer>.<operation>`` (dots, lowercase):
``rollup_index.build``, ``aggregate.alpha``, ``preagg.materialize``,
``query.execute`` — the catalogue lives in ``docs/OBSERVABILITY.md``.

Nesting is tracked per thread; the ring buffer is shared (appends are
GIL-atomic ``deque.append`` calls), so multi-threaded callers get a
merged, bounded trace without locks on the hot path.  Buffer
*management* — enabling with a resize, :func:`set_buffer_size`,
:func:`spans`, :func:`clear` — takes a module lock so a reader never
iterates a deque mid-swap; a span finishing concurrently with a resize
may land in the dropped buffer, which is the documented resize
behaviour (resizing drops recorded spans) either way.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "spans",
    "clear",
    "set_buffer_size",
]

#: default ring-buffer capacity (finished spans kept)
DEFAULT_BUFFER_SIZE = 4096

_enabled = False
_buffer: Deque["SpanRecord"] = deque(maxlen=DEFAULT_BUFFER_SIZE)
_stack = threading.local()
_BUFFER_LOCK = threading.Lock()


@dataclass
class SpanRecord:
    """One finished span, as stored in the ring buffer."""

    name: str
    #: wall-clock duration, seconds (includes child spans)
    elapsed_seconds: float
    #: nesting depth at entry (0 = top-level)
    depth: int
    #: name of the enclosing span, if any
    parent: Optional[str]
    #: keyword attributes passed to :func:`span`
    attributes: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = f" {self.attributes}" if self.attributes else ""
        return (f"SpanRecord({self.name}, {self.elapsed_seconds * 1e3:.3f}ms,"
                f" depth={self.depth}{attrs})")


class _NullSpan:
    """The shared do-nothing context manager handed out when tracing is
    disabled (no allocation, no timestamps, no buffer writes)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: measures wall time and records itself on exit."""

    __slots__ = ("name", "attributes", "_start", "_depth", "_parent")

    def __init__(self, name: str, attributes: Dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self._start = 0.0
        self._depth = 0
        self._parent: Optional[str] = None

    def __enter__(self) -> "_Span":
        stack: List[str] = getattr(_stack, "names", None)
        if stack is None:
            stack = _stack.names = []
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        stack = getattr(_stack, "names", None)
        if stack:
            stack.pop()
        _buffer.append(SpanRecord(
            name=self.name,
            elapsed_seconds=elapsed,
            depth=self._depth,
            parent=self._parent,
            attributes=self.attributes,
        ))


def span(name: str, **attributes):
    """A context manager timing one named unit of work.

    When tracing is disabled (the default) this returns a shared no-op
    object; when enabled, the finished span is appended to the ring
    buffer with its nesting depth and parent span name.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, attributes)


def enable(buffer_size: Optional[int] = None) -> None:
    """Turn tracing on (optionally resizing the ring buffer, which
    drops previously recorded spans)."""
    global _enabled, _buffer
    with _BUFFER_LOCK:
        if buffer_size is not None and buffer_size != _buffer.maxlen:
            _buffer = deque(maxlen=buffer_size)
        _enabled = True


def disable() -> None:
    """Turn tracing off.  Already-recorded spans stay readable."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def spans(name: Optional[str] = None) -> List[SpanRecord]:
    """The recorded spans, oldest first (optionally only those whose
    name equals ``name``)."""
    with _BUFFER_LOCK:
        if name is None:
            return list(_buffer)
        return [record for record in _buffer if record.name == name]


def clear() -> None:
    """Drop every recorded span (the enabled/disabled state stays)."""
    with _BUFFER_LOCK:
        _buffer.clear()


def set_buffer_size(size: int) -> None:
    """Resize the ring buffer (drops previously recorded spans)."""
    global _buffer
    if size < 1:
        raise ValueError(f"buffer size must be >= 1, got {size}")
    with _BUFFER_LOCK:
        _buffer = deque(maxlen=size)
