"""Observability layer: process-local metrics and trace spans.

The engine's hot paths (rollup index, α, pre-aggregation, query,
cube) report *what they did* — cache hits, rebuild causes, answer
paths, refusals — through :mod:`repro.obs.metrics`, and *where time
went* through :mod:`repro.obs.trace`.  Zero dependencies; tracing is
off by default and free when off.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    render,
    reset,
    snapshot,
)
from repro.obs.trace import SpanRecord, span

__all__ = [
    "metrics",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render",
    "reset",
    "snapshot",
    "SpanRecord",
    "span",
]
