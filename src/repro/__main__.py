"""Command-line interface: regenerate the paper's artifacts.

Usage::

    python -m repro table1           # the case study's base data
    python -m repro table2 [--verify]
    python -m repro figure1|figure2|figure3
    python -m repro probes           # the nine requirement probes
    python -m repro timeslice --date 01/06/85
    python -m repro analyze [--subject all|casestudy|clinical|retail|wide]
                            [--shardability] [--json]
    python -m repro export [--temporal] [--out FILE]
    python -m repro demo             # a synthetic workload walkthrough

Every command prints to stdout; ``export`` writes the case-study MO as
self-contained JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Multidimensional Data Modeling for "
                    "Complex Data' (Pedersen & Jensen, ICDE 1999)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (case-study data)")
    table2 = sub.add_parser("table2", help="print Table 2 (requirements "
                                           "matrix)")
    table2.add_argument("--verify", action="store_true",
                        help="back our model's row with the live probes")
    sub.add_parser("figure1", help="print Figure 1 (ER inventory)")
    sub.add_parser("figure2", help="print Figure 2 (schema lattices)")
    sub.add_parser("figure3", help="print Figure 3 (aggregate formation)")
    sub.add_parser("probes", help="run the nine requirement probes")
    slice_parser = sub.add_parser(
        "timeslice", help="valid-timeslice of the case study")
    slice_parser.add_argument("--date", required=True,
                              help="dd/mm/yy (e.g. 01/06/85)")
    export = sub.add_parser("export", help="dump the case-study MO as JSON")
    export.add_argument("--temporal", action="store_true",
                        help="include the validity intervals")
    export.add_argument("--out", default="-",
                        help="output file (default stdout)")
    demo = sub.add_parser("demo", help="synthetic clinical workload demo")
    demo.add_argument("--patients", type=int, default=200)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--backend", default="memory",
                      help="execution backend for the region-count "
                           "query (memory, sql, or sharded; see "
                           "repro.engine.backends)")
    analyze = sub.add_parser(
        "analyze", help="static schema analysis (exit 1 on errors)")
    analyze.add_argument("--subject", default="all",
                         choices=["all", "casestudy", "clinical",
                                  "retail", "wide"],
                         help="which schema(s) to lint (default all)")
    analyze.add_argument("--shardability", action="store_true",
                         help="analyze partition-and-merge safety of "
                              "representative rollup plans (MD07x) "
                              "instead of the schema lints")
    analyze.add_argument("--json", action="store_true", dest="as_json",
                         help="emit a machine-readable JSON report")
    return parser


def _cmd_table1() -> int:
    from repro.report import render_table1

    print(render_table1())
    return 0


def _cmd_table2(verify: bool) -> int:
    from repro.survey import render_table2

    print(render_table2(include_ours=True, verify=verify))
    return 0


def _cmd_figure1() -> int:
    from repro.report import render_figure1

    print(render_figure1())
    return 0


def _cmd_figure2() -> int:
    from repro.casestudy import case_study_mo
    from repro.report import render_figure2

    print(render_figure2(case_study_mo(temporal=False)))
    return 0


def _cmd_figure3() -> int:
    from repro.algebra import SetCount, aggregate
    from repro.casestudy import case_study_mo
    from repro.core.helpers import Band, make_result_spec
    from repro.report import render_figure3

    spec = make_result_spec("Result", bands=[Band(0, 2), Band(2, None)])
    agg = aggregate(case_study_mo(temporal=False), SetCount(),
                    {"Diagnosis": "Diagnosis Group"}, spec)
    print(render_figure3(agg, "Diagnosis", "Result"))
    return 0


def _cmd_probes() -> int:
    from repro.survey import run_all_probes

    failures = 0
    for result in run_all_probes():
        status = "PASS" if result.passed else "FAIL"
        failures += not result.passed
        print(f"[{status}] {result.requirement.number}. "
              f"{result.requirement.name}")
        print(f"       {result.detail}")
    return 1 if failures else 0


def _cmd_timeslice(date_text: str) -> int:
    from repro.casestudy import case_study_mo
    from repro.report import render_table
    from repro.temporal.chronon import parse_day
    from repro.temporal.timeslice import valid_timeslice

    chronon = parse_day(date_text)
    if not isinstance(chronon, int):
        print("timeslice needs a concrete date, not NOW",
              file=sys.stderr)
        return 2
    snap = valid_timeslice(case_study_mo(temporal=True), chronon)
    rows = []
    for fact, value in sorted(snap.relation("Diagnosis").pairs(),
                              key=repr):
        rows.append([fact.fid, value.label or value.sid])
    print(render_table(["patient", "diagnosis"], rows,
                       title=f"Diagnoses valid at {date_text}"))
    return 0


def _cmd_export(temporal: bool, out: str) -> int:
    from repro.casestudy import case_study_mo
    from repro.io import dumps

    text = dumps(case_study_mo(temporal=temporal), indent=2)
    if out == "-":
        print(text)
    else:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text)} bytes to {out}")
    return 0


def _cmd_demo(patients: int, seed: int, backend: str = "memory") -> int:
    from repro.algebra import SetCount, sql_aggregation
    from repro.engine import Query
    from repro.report import render_pivot
    from repro.workloads import ClinicalConfig, generate_clinical

    workload = generate_clinical(ClinicalConfig(n_patients=patients,
                                                seed=seed))
    mo = workload.mo
    print(f"Generated {len(mo.facts)} patients, "
          f"{len(workload.icd.low_levels)} low-level diagnoses")
    rows = sql_aggregation(
        mo, SetCount(),
        {"Diagnosis": "Diagnosis Group", "Residence": "Region"},
        strict_types=False)
    print()
    print(render_pivot(rows, "Diagnosis", "Residence", "SetCount",
                       title="Patients per (diagnosis group, region)"))
    report = (Query(mo).rollup("Residence", "Region")
              .explain(backend=backend))
    print()
    print(f"Patients per region via backend={backend!r}:")
    for group, value in report.rows:
        print(f"  {group['Residence']}: {value}")
    print(report.render())
    return 0


def _analyze_subjects(subject: str):
    if subject in ("all", "casestudy"):
        from repro.casestudy import case_study_mo
        yield "case study", case_study_mo(temporal=True)
    if subject in ("all", "clinical"):
        from repro.workloads import ClinicalConfig, generate_clinical
        yield "clinical workload", generate_clinical(
            ClinicalConfig(n_patients=50, seed=0)).mo
    if subject in ("all", "retail"):
        from repro.workloads import generate_retail
        yield "retail workload", generate_retail().mo
    if subject in ("all", "wide"):
        from repro.workloads.wide import WideConfig, generate_wide
        yield "wide workload", generate_wide(
            WideConfig(n_facts=50, n_flat_dimensions=20)).mo


def _representative_plans(mo):
    """Rollup plans standing in for the subject's query mix: a
    distributive rollup at the coarsest categories below ⊤, plus a
    holistic (Median) rollup so the MD07x path is visibly exercised."""
    from repro.algebra.functions import Median, SetCount
    from repro.engine.query import Query

    grouping = []
    for dtype in mo.schema.dimension_types():
        below_top = sorted(dtype.succ(dtype.top_name))
        if below_top:
            grouping.append((dtype.name, below_top[0]))
        if len(grouping) == 2:
            break
    query = Query(mo)
    for name, category in grouping:
        query = query.rollup(name, category)
    described = ", ".join(f"{n}→{c}" for n, c in grouping) or "⊤"
    yield f"SetCount rollup [{described}]", query.to_plan(SetCount())
    if grouping:
        yield (f"Median({grouping[0][0]}) rollup [{described}]",
               query.to_plan(Median(grouping[0][0])))


def _diagnostic_dict(diagnostic) -> dict:
    return {
        "code": diagnostic.code,
        "severity": diagnostic.severity.value,
        "message": diagnostic.message,
        "location": diagnostic.location,
        "hint": diagnostic.hint,
    }


def _cmd_analyze(subject: str, shardability: bool, as_json: bool) -> int:
    import json

    from repro.analyze import analyze_schema, shardability_of

    failed = False
    payload: dict = {"command": "analyze", "subject": subject,
                     "shardability": shardability, "subjects": []}
    for title, mo in _analyze_subjects(subject):
        entry: dict = {"subject": title}
        if shardability:
            entry["plans"] = []
            if not as_json:
                print(f"== {title} ==")
            for plan_title, plan in _representative_plans(mo):
                verdict, report = shardability_of(plan)
                entry["plans"].append({
                    "plan": plan_title,
                    "verdict": verdict.value,
                    "diagnostics": [_diagnostic_dict(d) for d in report],
                })
                failed = failed or report.has_errors
                if not as_json:
                    print(f"{plan_title}: {verdict.value}")
                    if report.diagnostics:
                        print(report.render())
            if not as_json:
                print()
            payload["subjects"].append(entry)
            continue
        report = analyze_schema(mo)
        entry["diagnostics"] = [_diagnostic_dict(d) for d in report]
        entry["errors"] = len(report.errors)
        entry["warnings"] = len(report.warnings)
        payload["subjects"].append(entry)
        failed = failed or report.has_errors
        if as_json:
            continue
        print(f"== {title} ==")
        if report.diagnostics:
            print(report.render())
        else:
            print("clean: no diagnostics")
        print(f"{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
        print()
    payload["ok"] = not failed
    if as_json:
        print(json.dumps(payload, indent=2, ensure_ascii=False))
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "table2":
        return _cmd_table2(args.verify)
    if args.command == "figure1":
        return _cmd_figure1()
    if args.command == "figure2":
        return _cmd_figure2()
    if args.command == "figure3":
        return _cmd_figure3()
    if args.command == "probes":
        return _cmd_probes()
    if args.command == "timeslice":
        return _cmd_timeslice(args.date)
    if args.command == "export":
        return _cmd_export(args.temporal, args.out)
    if args.command == "demo":
        return _cmd_demo(args.patients, args.seed, args.backend)
    if args.command == "analyze":
        return _cmd_analyze(args.subject, args.shardability, args.as_json)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`): exit quietly
        sys.exit(0)
