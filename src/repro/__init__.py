"""repro — a reproduction of "Multidimensional Data Modeling for
Complex Data" (Torben Bach Pedersen and Christian S. Jensen, ICDE 1999).

The package implements the paper's extended multidimensional data model
and its algebra, including the temporal and uncertainty extensions, the
summarizability machinery, the clinical case study, the requirements
survey (Table 2), a relational substrate for Theorem 2, an efficient-
implementation engine (pre-aggregation, cubes, query API), and seeded
workload generators.

Quickstart::

    from repro.casestudy import case_study_mo
    from repro.algebra import aggregate, SetCount
    from repro.core import make_result_spec

    mo = case_study_mo()
    counts = aggregate(mo, SetCount(),
                       {"Diagnosis": "Diagnosis Group"},
                       make_result_spec())

Subpackages:

* :mod:`repro.core` — the model (§3.1, §3.4)
* :mod:`repro.algebra` — the operators (§4.1) and derived operators
* :mod:`repro.temporal` — chronons, time sets, timeslices (§3.2, §4.2)
* :mod:`repro.uncertainty` — probabilities (§3.3)
* :mod:`repro.casestudy` — Table 1 and the "Patient" MO (§2.1)
* :mod:`repro.survey` — the nine requirements and Table 2 (§2.2-§2.3)
* :mod:`repro.relational` — Klug's algebra and the Theorem 2 checker
* :mod:`repro.engine` — indexes, pre-aggregation, cubes, queries (§5)
* :mod:`repro.workloads` — synthetic clinical and retail workloads
* :mod:`repro.report` — text renderings of the paper's tables/figures
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
