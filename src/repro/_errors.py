"""Exception hierarchy for the extended multidimensional data model.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause.  The
subclasses mirror the layers of the paper's model:

* schema-level problems (ill-formed lattices, mismatched schemas) raise
  :class:`SchemaError`;
* instance-level problems (facts missing dimension characterizations,
  values outside their category) raise :class:`InstanceError`;
* algebra misuse (operands with incompatible schemas, aggregation over
  data whose aggregation type forbids it) raises :class:`AlgebraError`;
* temporal misuse (malformed intervals, uncoalesced data) raises
  :class:`TemporalError`;
* probabilistic misuse (probabilities outside [0, 1]) raises
  :class:`UncertaintyError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "InstanceError",
    "AlgebraError",
    "AggregationTypeError",
    "SummarizabilityWarning",
    "StaticAnalysisError",
    "TemporalError",
    "UncertaintyError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """An intension-level constraint is violated.

    Examples: a dimension type whose category types do not form a lattice,
    an operator applied to multidimensional objects with different fact
    schemas, or a category name that does not exist in its dimension.
    """


class InstanceError(ReproError):
    """An extension-level constraint is violated.

    Examples: a fact-dimension relation referring to a fact that is not in
    the fact set, a dimension value placed in no category, or a fact with
    no characterization in some dimension (the paper disallows missing
    values; the ⊤ value must be used instead).
    """


class AlgebraError(ReproError):
    """An algebra operator is applied to invalid operands."""


class AggregationTypeError(AlgebraError):
    """An aggregate function is applied to data whose aggregation type
    does not permit it (paper §3.1: the ⊕ / ⊘ / c mechanism).

    The paper states the mechanism "can then be used to either prevent
    users from doing 'illegal' calculations on the data completely, or to
    warn the users".  The strict mode of the library raises this error;
    the permissive mode issues :class:`SummarizabilityWarning` instead.
    """


class SummarizabilityWarning(UserWarning):
    """Warns that an aggregate result may be incorrect (double counting,
    adding non-additive data) because a summarizability precondition
    fails.  Used in permissive aggregation mode."""


class StaticAnalysisError(ReproError):
    """The static analyzer found error-severity diagnostics.

    Raised by :meth:`repro.engine.query.Query.execute` (unless checking
    is opted out) when :mod:`repro.analyze` rejects the pipeline before
    any data is touched.  Carries the offending diagnostics in the
    ``diagnostics`` attribute."""

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class TemporalError(ReproError):
    """A temporal constraint is violated (paper §3.2).

    Examples: an interval whose start exceeds its end, a chronon outside
    the bounded time domain, or an attempt to slice a snapshot MO."""


class UncertaintyError(ReproError):
    """A probability annotation is invalid (paper §3.3)."""
