"""Self-contained JSON (de)serialization of multidimensional objects.

Unlike the star export (which targets relational tools and needs a
template MO to re-import), this codec captures *everything* — the
dimension-type lattices, aggregation types, categories with timestamped
membership, representations, the annotated partial orders, facts, and
fact-dimension relations — so an MO can be written to a file and read
back with no other context.  Round-tripping is property-tested.

Surrogates and fact ids may be any of the JSON-safe scalar types plus
tuples (encoded as tagged lists) and frozensets of facts (set-facts
from aggregate formation, encoded recursively).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List

from repro._errors import SchemaError
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.temporal.timeset import TimeSet

__all__ = ["mo_to_dict", "mo_from_dict", "dumps", "loads", "FORMAT_VERSION"]

#: bumped on incompatible changes to the layout below.
FORMAT_VERSION = 1


# -- scalar encoding -----------------------------------------------------------


def _encode_id(value: Hashable) -> Any:
    """Encode a surrogate/fact id into JSON-safe structure."""
    if value is None or isinstance(value, (str, bool)):
        return {"t": "s", "v": value}
    if isinstance(value, int):
        return {"t": "i", "v": value}
    if isinstance(value, float):
        return {"t": "f", "v": value}
    if isinstance(value, tuple):
        return {"t": "t", "v": [_encode_id(item) for item in value]}
    if isinstance(value, frozenset):
        encoded = sorted(
            (_encode_fact(item) for item in value), key=json.dumps)
        return {"t": "fs", "v": encoded}
    raise SchemaError(f"cannot serialize id {value!r} of type "
                      f"{type(value).__name__}")


def _decode_id(data: Any) -> Hashable:
    kind = data["t"]
    if kind in ("s", "i", "f"):
        return data["v"]
    if kind == "t":
        return tuple(_decode_id(item) for item in data["v"])
    if kind == "fs":
        return frozenset(_decode_fact(item) for item in data["v"])
    raise SchemaError(f"unknown id tag {kind!r}")


def _encode_fact(fact: Fact) -> Dict[str, Any]:
    return {"fid": _encode_id(fact.fid), "ftype": fact.ftype}


def _decode_fact(data: Dict[str, Any]) -> Fact:
    return Fact(fid=_decode_id(data["fid"]), ftype=data["ftype"])


def _encode_time(time: TimeSet) -> List[List[int]]:
    return [[start, end] for start, end in time.intervals]


def _decode_time(data: List[List[int]]) -> TimeSet:
    return TimeSet.of([(start, end) for start, end in data])


def _encode_value(value: DimensionValue) -> Dict[str, Any]:
    return {
        "sid": _encode_id(value.sid),
        "is_top": value.is_top,
        "label": value.label,
    }


def _decode_value(data: Dict[str, Any]) -> DimensionValue:
    return DimensionValue(sid=_decode_id(data["sid"]),
                          is_top=data["is_top"], label=data["label"])


# -- dimension (de)serialization ---------------------------------------------------


def _encode_dimension(dimension: Dimension) -> Dict[str, Any]:
    dtype = dimension.dtype
    ctypes = [
        {
            "name": ctype.name,
            "aggtype": ctype.aggtype.name,
            "is_top": ctype.is_top,
            "is_bottom": ctype.is_bottom,
        }
        for ctype in dtype.category_types()
    ]
    edges = [
        [ctype.name, parent]
        for ctype in dtype.category_types()
        for parent in sorted(dtype.pred(ctype.name))
        if parent != dtype.top_name
    ]
    categories = []
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        members = [
            {"value": _encode_value(value), "time": _encode_time(time)}
            for value, time in category.items()
        ]
        reps = []
        for rep_name, rep in sorted(
                dimension.representations_of(category.name).items()):
            entries = [
                {"value": _encode_value(value), "name": rep_value,
                 "time": _encode_time(time)}
                for value, rep_value, time in rep.entries()
            ]
            reps.append({"name": rep_name, "entries": entries})
        categories.append({"name": category.name, "members": members,
                           "representations": reps})
    order = [
        {
            "child": _encode_value(child),
            "parent": _encode_value(parent),
            "time": _encode_time(time),
            "prob": prob,
        }
        for child, parent, time, prob in dimension.order.edges()
    ]
    encoded = {
        "name": dtype.name,
        "category_types": ctypes,
        "type_edges": edges,
        "categories": categories,
        "order": order,
    }
    # only emit declarations that were made, so documents from older
    # versions and documents for undeclared schemas stay byte-identical
    if dtype.declared_strict is not None:
        encoded["declared_strict"] = dtype.declared_strict
    if dtype.declared_partitioning is not None:
        encoded["declared_partitioning"] = dtype.declared_partitioning
    return encoded


def _decode_dimension(data: Dict[str, Any]) -> Dimension:
    ctypes = [
        CategoryType(
            name=item["name"],
            aggtype=AggregationType[item["aggtype"]],
            is_top=item["is_top"],
            is_bottom=item["is_bottom"],
        )
        for item in data["category_types"]
        if not item["is_top"]
    ]
    dtype = DimensionType(
        data["name"], ctypes,
        [(child, parent) for child, parent in data["type_edges"]],
        declared_strict=data.get("declared_strict"),
        declared_partitioning=data.get("declared_partitioning"))
    dimension = Dimension(dtype)
    for category in data["categories"]:
        for member in category["members"]:
            dimension.add_value(category["name"],
                                _decode_value(member["value"]),
                                _decode_time(member["time"]))
        for rep_data in category["representations"]:
            rep = dimension.add_representation(category["name"],
                                               rep_data["name"])
            for entry in rep_data["entries"]:
                rep.assign(_decode_value(entry["value"]), entry["name"],
                           _decode_time(entry["time"]))
    for edge in data["order"]:
        dimension.add_edge(
            _decode_value(edge["child"]), _decode_value(edge["parent"]),
            time=_decode_time(edge["time"]), prob=edge["prob"])
    return dimension


# -- MO (de)serialization --------------------------------------------------------------


def mo_to_dict(mo: MultidimensionalObject) -> Dict[str, Any]:
    """Serialize an MO to a JSON-safe dictionary."""
    relations = {}
    for name in mo.dimension_names:
        relations[name] = [
            {
                "fact": _encode_fact(fact),
                "value": _encode_value(value),
                "time": _encode_time(time),
                "prob": prob,
            }
            for fact, value, time, prob
            in mo.relation(name).annotated_pairs()
        ]
    return {
        "format": FORMAT_VERSION,
        "fact_type": mo.schema.fact_type,
        "kind": mo.kind.name,
        "facts": [_encode_fact(f) for f in sorted(mo.facts, key=repr)],
        "dimensions": [
            _encode_dimension(mo.dimension(name))
            for name in mo.dimension_names
        ],
        "relations": relations,
    }


def mo_from_dict(data: Dict[str, Any]) -> MultidimensionalObject:
    """Deserialize an MO from :func:`mo_to_dict`'s layout."""
    if data.get("format") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported format {data.get('format')!r}; this build reads "
            f"version {FORMAT_VERSION}"
        )
    dimensions = {
        dim_data["name"]: _decode_dimension(dim_data)
        for dim_data in data["dimensions"]
    }
    schema = FactSchema(data["fact_type"],
                        [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(
        schema=schema,
        dimensions=dimensions,
        kind=TimeKind[data["kind"]],
    )
    for fact_data in data["facts"]:
        mo.add_fact(_decode_fact(fact_data))
    for name, entries in data["relations"].items():
        for entry in entries:
            mo.relate(
                _decode_fact(entry["fact"]), name,
                _decode_value(entry["value"]),
                time=_decode_time(entry["time"]),
                prob=entry["prob"],
            )
    return mo


def dumps(mo: MultidimensionalObject, indent: int = None) -> str:
    """Serialize an MO to a JSON string."""
    return json.dumps(mo_to_dict(mo), indent=indent, sort_keys=True)


def loads(text: str) -> MultidimensionalObject:
    """Deserialize an MO from a JSON string."""
    return mo_from_dict(json.loads(text))
