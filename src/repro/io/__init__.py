"""Persistence: a self-contained JSON codec for multidimensional
objects (save/load without any template)."""

from repro.io.json_codec import (
    FORMAT_VERSION,
    dumps,
    loads,
    mo_from_dict,
    mo_to_dict,
)

__all__ = ["FORMAT_VERSION", "dumps", "loads", "mo_from_dict",
           "mo_to_dict"]
