"""The nine requirements to multidimensional data models (paper §2.2).

Each requirement is a first-class object carrying the paper's number,
short name, and description, so the survey matrix (Table 2), the live
probes, and the documentation all draw from one source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Requirement", "REQUIREMENTS"]


@dataclass(frozen=True)
class Requirement:
    """One of the paper's nine requirements."""

    number: int
    name: str
    description: str


REQUIREMENTS: Tuple[Requirement, ...] = (
    Requirement(
        1, "Explicit hierarchies in dimensions",
        "Dimension hierarchies (e.g. area < county < region) are captured "
        "explicitly to aid navigation.",
    ),
    Requirement(
        2, "Symmetric treatment of dimensions and measures",
        "Any attribute can serve as a measure or as a dimension (e.g. Age "
        "for averages as well as for age groups).",
    ),
    Requirement(
        3, "Multiple hierarchies in a dimension",
        "Several aggregation paths coexist in one dimension (e.g. days "
        "roll up into weeks or months).",
    ),
    Requirement(
        4, "Correct aggregation (summarizability)",
        "Data is not double counted and non-additive data is not added "
        "(e.g. a patient counts once per diagnosis group).",
    ),
    Requirement(
        5, "Non-strict hierarchies",
        "A lower-level item may belong to several higher-level items "
        "(the user-defined diagnosis hierarchy).",
    ),
    Requirement(
        6, "Many-to-many fact-dimension relationships",
        "A fact may relate to several dimension values (patients have "
        "several diagnoses).",
    ),
    Requirement(
        7, "Handling change and time",
        "Changes in data over time (e.g. the evolving diagnosis "
        "classification) are supported directly.",
    ),
    Requirement(
        8, "Handling uncertainty",
        "Uncertain data (e.g. a 90%-certain diagnosis) is handled "
        "directly.",
    ),
    Requirement(
        9, "Different levels of granularity",
        "Data may be recorded at mixed precision (precise and imprecise "
        "diagnoses).",
    ),
)
