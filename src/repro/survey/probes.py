"""Executable probes: each of the nine requirements demonstrated live
against this implementation (paper §2.2 / §5).

Every probe builds on the case study, exercises the feature through the
public API, and returns a :class:`ProbeResult` with a human-readable
account of what was verified.  The Table 2 benchmark runs all nine and
asserts that they pass — turning the paper's claimed "√" row into a
checked property of the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.algebra import SetCount, Sum, aggregate
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.aggtypes import AggregationType
from repro.core.helpers import make_result_spec
from repro.core.properties import (
    hierarchy_is_partitioning,
    hierarchy_is_strict,
)
from repro.survey.requirements import REQUIREMENTS, Requirement
from repro.temporal.chronon import day
from repro.temporal.timeslice import valid_timeslice
from repro.uncertainty import expected_count, is_certain

__all__ = ["ProbeResult", "run_probe", "run_all_probes"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one requirement probe."""

    requirement: Requirement
    passed: bool
    detail: str


def _probe_1_explicit_hierarchies() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    dtype = mo.dimension("Residence").dtype
    chain_ok = (dtype.leq("Area", "County") and dtype.leq("County", "Region")
                and not dtype.leq("Region", "Area"))
    return chain_ok, (
        "Residence dimension type explicitly captures Area < County < "
        "Region in its category-type lattice"
    )


def _probe_2_symmetric_treatment() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    # Age as a measure: sum of ages per diagnosis group
    result = make_result_spec("AgeSum")
    agg = aggregate(mo, Sum("Age"), {"Diagnosis": "Diagnosis Group"}, result,
                    strict_types=False)
    sums = {tuple(sorted(m.fid for m in f.members)): v.sid
            for f, v in agg.relation("AgeSum").pairs()}
    # Age as a dimension: the same attribute has grouping categories
    age = mo.dimension("Age")
    groups = age.category("Ten-year group").members()
    measure_ok = sums and all(isinstance(s, (int, float)) for s in sums.values())
    dimension_ok = len(groups) > 0 and \
        age.dtype.bottom.aggtype is AggregationType.SUM
    return bool(measure_ok and dimension_ok), (
        "Age is summed per diagnosis group (a measure) and simultaneously "
        "carries five-/ten-year grouping categories (a dimension)"
    )


def _probe_3_multiple_hierarchies() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    dtype = mo.dimension("DOB").dtype
    ok = (dtype.leq("Day", "Week") and dtype.leq("Day", "Month")
          and dtype.leq("Month", "Year")
          and not dtype.leq("Week", "Month")
          and not dtype.leq("Month", "Week")
          and dtype.is_lattice())
    return ok, (
        "The DOB dimension holds two aggregation paths (Day < Week and "
        "Day < Month < Quarter < Year < Decade) in one lattice"
    )


def _probe_4_correct_aggregation() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    result = make_result_spec()
    agg = aggregate(mo, SetCount(), {"Diagnosis": "Diagnosis Group"}, result)
    counts = {}
    for fact, value in agg.relation("Diagnosis").pairs():
        counts[value.sid] = len(fact.members)
    # patient 2 has two diagnoses under group 11 (old 8 via user-defined 3,
    # and 9) but counts once; and the unsafe result is marked constant
    once = counts.get(11) == 2 and counts.get(12) == 1
    guarded = agg.dimension("Result").dtype.bottom.aggtype \
        is AggregationType.CONSTANT
    return bool(once and guarded), (
        "Set-count counts each patient once per diagnosis group, and the "
        "propagation rule marks the non-summarizable result 'c' so it "
        "cannot be double counted further"
    )


def _probe_5_non_strict_hierarchies() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    diag = mo.dimension("Diagnosis")
    non_strict = not hierarchy_is_strict(diag)
    # low-level 5 sits in two families: 4 (WHO) and 9 (user-defined)
    both = diag.leq(diagnosis_value(5), diagnosis_value(4)) and \
        diag.leq(diagnosis_value(5), diagnosis_value(9))
    partitioning = hierarchy_is_partitioning(
        diag.subdimension(["Low-level Diagnosis", "Diagnosis Family"]))
    return bool(non_strict and both and partitioning), (
        "Low-level diagnosis 5 belongs to families 4 and 9 at once; the "
        "hierarchy is detected as non-strict"
    )


def _probe_6_many_to_many() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    values = mo.relation("Diagnosis").values_of(patient_fact(2))
    ok = {v.sid for v in values} == {3, 5, 8, 9}
    return ok, (
        "Patient 2 is directly related to four diagnoses (3, 5, 8, 9) in "
        "one fact-dimension relation"
    )


def _probe_7_change_and_time() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=True, include_example10_link=True)
    rel, dim = mo.relation("Diagnosis"), mo.dimension("Diagnosis")
    t = rel.characterization_time(patient_fact(2), diagnosis_value(11), dim)
    spans_change = day(1980, 6, 1) in t and day(1990, 6, 1) in t
    slice75 = valid_timeslice(mo, day(1975, 6, 1))
    old_world = diagnosis_value(11) not in slice75.dimension("Diagnosis")
    return bool(spans_change and old_world), (
        "Example 10: patient 2 counts under the new 'Diabetes' group "
        "across the 1980 reclassification, and the 1975 timeslice shows "
        "the old classification only"
    )


def _probe_8_uncertainty() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    uncertain = case_study_mo(temporal=False)
    uncertain.relate(patient_fact(1), "Diagnosis", diagnosis_value(10),
                     prob=0.9)
    e = expected_count(uncertain, "Diagnosis", diagnosis_value(10))
    ok = abs(e - 0.9) < 1e-12 and is_certain(mo) and not is_certain(uncertain)
    return ok, (
        "A 90%-certain diagnosis yields an expected count of 0.9 and the "
        "MO is recognized as uncertain"
    )


def _probe_9_granularity() -> Tuple[bool, str]:
    mo = case_study_mo(temporal=False)
    rel, dim = mo.relation("Diagnosis"), mo.dimension("Diagnosis")
    # patient 1 is related to 9, a Diagnosis *Family* (imprecise), while
    # patient 2 is also related to low-level diagnoses (precise)
    level_of = {v.sid: dim.category_name_of(v)
                for v in rel.values_of(patient_fact(1))
                | rel.values_of(patient_fact(2))}
    ok = level_of.get(9) == "Diagnosis Family" and \
        level_of.get(5) == "Low-level Diagnosis"
    return ok, (
        "Facts link to values of different categories: patient 1 to a "
        "family (imprecise), patient 2 also to low-level diagnoses"
    )


_PROBES: List[Callable[[], Tuple[bool, str]]] = [
    _probe_1_explicit_hierarchies,
    _probe_2_symmetric_treatment,
    _probe_3_multiple_hierarchies,
    _probe_4_correct_aggregation,
    _probe_5_non_strict_hierarchies,
    _probe_6_many_to_many,
    _probe_7_change_and_time,
    _probe_8_uncertainty,
    _probe_9_granularity,
]


def run_probe(requirement_number: int) -> ProbeResult:
    """Run the probe for one requirement (1-9)."""
    requirement = REQUIREMENTS[requirement_number - 1]
    passed, detail = _PROBES[requirement_number - 1]()
    return ProbeResult(requirement=requirement, passed=passed, detail=detail)


def run_all_probes() -> List[ProbeResult]:
    """Run all nine probes, in requirement order."""
    return [run_probe(i) for i in range(1, 10)]
