"""Rationale behind the Table 2 judgements (paper §2.3).

The ICDE paper states the matrix and defers the per-cell discussion to
the companion TR-37 report.  This module records a concise, clearly
reconstructed rationale per surveyed model — consistent with the
matrix and with the surveyed papers' own descriptions — so the
regenerated Table 2 can explain itself.  These texts are our
reconstruction, not quotations from the authors.
"""

from __future__ import annotations

from typing import Dict, List

from repro.survey.models import SURVEYED_MODELS
from repro.survey.requirements import REQUIREMENTS

__all__ = ["RATIONALE", "render_rationale"]

#: model key → reconstruction of why its row looks the way it does.
RATIONALE: Dict[str, str] = {
    "Rafanelli":
        "STORM models statistical tables with explicit category "
        "hierarchies and a summarizability discipline (full on 1 and 4) "
        "and its classification structures admit some overlap (partial "
        "on 5), but summary attributes are separated from categories "
        "(no 2), a variable has one classification path (no 3), and "
        "facts attach to single category instances (no 6-9).",
    "Agrawal":
        "The ICDE'97 cube model treats dimensions and measures "
        "symmetrically (full 2) and supports grouping via functions "
        "(partial 1, 3) including merging values (partial 5), but its "
        "algebra does not track double counting (no 4) and has no "
        "temporal, probabilistic, or granularity constructs (no 6-9).",
    "Gray":
        "The data cube generalizes GROUP BY with ALL, treating any "
        "column as groupable (full 2; partial 3 via multiple rollups "
        "and partial 4 via careful use of aggregates), but hierarchies "
        "are implicit in the column values (no 1) and cells bind each "
        "tuple to one value per dimension (no 5-9).",
    "Kimball":
        "Dimensional star schemas offer multiple hierarchies as "
        "dimension attributes (full 3), discuss additivity informally "
        "(partial 4), and handle change via slowly-changing-dimension "
        "techniques (partial 7), but hierarchies are not schema objects "
        "(no 1), facts are rigidly measures (no 2), and bridge-free "
        "designs keep fact-dimension links many-to-one (no 5, 6, 8, 9).",
    "Li":
        "Li & Wang's cube algebra has grouping relations over "
        "dimension attributes (partial 1, full 3) and addresses "
        "aggregation via operators (partial 4), but measures are "
        "distinguished from dimensions (no 2) and relationships are "
        "functional and atemporal (no 5-9).",
    "Gyssens":
        "The tabular foundation is value-symmetric (full 2) with "
        "restructuring operators that emulate rollup paths (partial 3) "
        "and a disciplined algebra (partial 4), but it models tables "
        "without explicit hierarchies (no 1) and without non-strict, "
        "many-to-many, temporal, or probabilistic structure (no 5-9).",
    "Datta":
        "The WITS model keeps dimensions and measures interchangeable "
        "(full 2) with attribute hierarchies usable in several ways "
        "(partial 3) and set-based groupings that tolerate some overlap "
        "(partial 5), but offers no explicit hierarchy objects (no 1), "
        "no summarizability control (no 4), and nothing temporal or "
        "probabilistic (no 6-9).",
    "Lehner":
        "Multidimensional objects in Lehner's EDBT'98 model carry "
        "explicit classification hierarchies (full 1) with strictness "
        "conditions that protect aggregation (full 4), but dimensional "
        "attributes are not measures (no 2), classification is a single "
        "strict path per dimension (no 3, 5), and facts map to one "
        "lowest-level node (no 6-9).",
}


def render_rationale() -> str:
    """One paragraph per surveyed model, preceded by its matrix row."""
    lines: List[str] = [
        "Rationale for Table 2 (reconstruction; the paper defers the "
        "discussion to TR-37):",
        "",
    ]
    header = "  ".join(str(r.number) for r in REQUIREMENTS)
    for model in SURVEYED_MODELS:
        row = "  ".join(str(level) for level in model.support)
        lines.append(f"{model.citation}   [{header}] = [{row}]")
        lines.append(f"  {RATIONALE[model.key]}")
        lines.append("")
    return "\n".join(lines).rstrip()
