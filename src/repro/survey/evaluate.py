"""Regeneration of Table 2 (paper §2.3).

:func:`table2_matrix` returns the evaluation matrix as structured data;
:func:`render_table2` renders it in the paper's layout (models as rows,
requirements 1-9 as columns, cells √ / p / -), optionally appending the
row for this paper's model, whose cells are *demonstrated* by the live
probes rather than asserted.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.report.tables import render_table
from repro.survey.models import (
    OUR_MODEL_ROW,
    SURVEYED_MODELS,
    Support,
    SurveyedModel,
)
from repro.survey.probes import ProbeResult, run_all_probes

__all__ = ["table2_matrix", "render_table2", "verified_our_row"]


def table2_matrix(include_ours: bool = False) -> List[SurveyedModel]:
    """The Table 2 rows (optionally with this paper's model appended)."""
    rows = list(SURVEYED_MODELS)
    if include_ours:
        rows.append(OUR_MODEL_ROW)
    return rows


def verified_our_row() -> Tuple[SurveyedModel, List[ProbeResult]]:
    """This model's Table 2 row with each cell backed by a live probe:
    the returned row shows √ only where the probe actually passed."""
    results = run_all_probes()
    support = tuple(
        Support.FULL if r.passed else Support.NONE for r in results
    )
    row = SurveyedModel(
        key=OUR_MODEL_ROW.key,
        citation=OUR_MODEL_ROW.citation,
        reference=OUR_MODEL_ROW.reference,
        support=support,
    )
    return row, results


def render_table2(include_ours: bool = False, verify: bool = False) -> str:
    """Render Table 2 as text.

    ``include_ours`` appends this paper's model; with ``verify`` its row
    is computed by running the nine probes.
    """
    rows = list(SURVEYED_MODELS)
    if include_ours:
        if verify:
            ours, _ = verified_our_row()
        else:
            ours = OUR_MODEL_ROW
        rows.append(ours)
    header = [""] + [str(i) for i in range(1, 10)]
    body = [
        [model.citation] + [str(level) for level in model.support]
        for model in rows
    ]
    return render_table(header, body,
                        title="Table 2. Evaluation of the Data Models")
