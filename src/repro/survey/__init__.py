"""The requirements survey (paper §2.2-§2.3): the nine requirements,
the eight surveyed models, Table 2, and live probes demonstrating each
requirement against this implementation."""

from repro.survey.evaluate import render_table2, table2_matrix, verified_our_row
from repro.survey.models import (
    OUR_MODEL_ROW,
    SURVEYED_MODELS,
    Support,
    SurveyedModel,
    as_matrix,
)
from repro.survey.probes import ProbeResult, run_all_probes, run_probe
from repro.survey.rationale import RATIONALE, render_rationale
from repro.survey.requirements import REQUIREMENTS, Requirement

__all__ = [
    "render_table2",
    "table2_matrix",
    "verified_our_row",
    "OUR_MODEL_ROW",
    "SURVEYED_MODELS",
    "Support",
    "SurveyedModel",
    "as_matrix",
    "ProbeResult",
    "run_all_probes",
    "run_probe",
    "RATIONALE",
    "render_rationale",
    "REQUIREMENTS",
    "Requirement",
]
