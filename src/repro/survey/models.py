"""The eight surveyed data models and their published support levels
(paper §2.3, Table 2).

Table 2 records, for each model and each of the nine requirements,
whether the model gives full (√), partial (p), or no (-) support.  The
matrix below is the paper's judgement reproduced cell-for-cell, with a
short rationale per non-trivial cell drawn from the paper's discussion
(the detailed arguments are in the companion TR-37 report).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Support", "SurveyedModel", "SURVEYED_MODELS", "OUR_MODEL_ROW"]


class Support(enum.Enum):
    """A Table 2 cell: full, partial, or no support."""

    FULL = "√"
    PARTIAL = "p"
    NONE = "-"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SurveyedModel:
    """One surveyed model with its support row (requirement → level)."""

    key: str
    citation: str
    reference: str
    support: Tuple[Support, ...]  # indexed by requirement number - 1

    def level(self, requirement_number: int) -> Support:
        """The support level for requirement ``requirement_number``."""
        return self.support[requirement_number - 1]


F, P, N = Support.FULL, Support.PARTIAL, Support.NONE

SURVEYED_MODELS: Tuple[SurveyedModel, ...] = (
    SurveyedModel(
        key="Rafanelli",
        citation="Rafanelli & Shoshani [6]",
        reference="STORM: A Statistical Object Representation Model, "
                  "SSDBM 1990",
        support=(F, N, N, F, P, N, N, N, N),
    ),
    SurveyedModel(
        key="Agrawal",
        citation="Agrawal et al. [5]",
        reference="Modeling Multidimensional Databases, ICDE 1997",
        support=(P, F, P, N, P, N, N, N, N),
    ),
    SurveyedModel(
        key="Gray",
        citation="Gray et al. [2]",
        reference="Data Cube: A Relational Aggregation Operator..., "
                  "ICDE 1996",
        support=(N, F, P, P, N, N, N, N, N),
    ),
    SurveyedModel(
        key="Kimball",
        citation="Kimball [3]",
        reference="The Data Warehouse Toolkit, Wiley 1996",
        support=(N, N, F, P, N, N, P, N, N),
    ),
    SurveyedModel(
        key="Li",
        citation="Li & Wang [10]",
        reference="A Data Model for Supporting On-Line Analytical "
                  "Processing, CIKM 1996",
        support=(P, N, F, P, N, N, N, N, N),
    ),
    SurveyedModel(
        key="Gyssens",
        citation="Gyssens & Lakshmanan [9]",
        reference="A Foundation for Multi-Dimensional Databases, VLDB 1997",
        support=(N, F, P, P, N, N, N, N, N),
    ),
    SurveyedModel(
        key="Datta",
        citation="Datta & Thomas [13]",
        reference="A Conceptual Model and Algebra for OLAP..., WITS 1997",
        support=(N, F, P, N, P, N, N, N, N),
    ),
    SurveyedModel(
        key="Lehner",
        citation="Lehner [11]",
        reference="Modeling Large Scale OLAP Scenarios, EDBT 1998",
        support=(F, N, N, F, N, N, N, N, N),
    ),
)

#: The row the paper claims for its own model: full support of all nine
#: requirements.  The live probes in :mod:`repro.survey.probes`
#: *demonstrate* each cell against this implementation.
OUR_MODEL_ROW: SurveyedModel = SurveyedModel(
    key="Pedersen",
    citation="Pedersen & Jensen (this paper)",
    reference="Multidimensional Data Modeling for Complex Data, ICDE 1999",
    support=(F, F, F, F, F, F, F, F, F),
)


def as_matrix() -> Dict[str, Tuple[Support, ...]]:
    """The Table 2 matrix keyed by model key."""
    return {model.key: model.support for model in SURVEYED_MODELS}


__all__ += ["as_matrix"]
